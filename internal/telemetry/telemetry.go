package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Telemetry bundles the two observability surfaces a run can enable
// independently: the cycle-stamped event tracer and the aggregating
// metrics registry. A nil *Telemetry (or nil fields) disables the
// corresponding surface; every consumer nil-checks before emitting.
type Telemetry struct {
	Events  *Tracer
	Metrics *Registry
}

// Tracer returns the event tracer (nil when tracing is disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.Events
}

// Registry returns the metrics registry (nil when metrics are disabled).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// LineSink is a mutex-guarded line writer for human-oriented progress
// output (the figure harness's verbose stream). Each Emitf call writes
// one whole line atomically, so concurrent runs never interleave
// mid-line; errors are sticky and silently swallowed — progress output
// must never abort a run.
type LineSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewLineSink wraps w. A nil *LineSink is a valid disabled sink.
func NewLineSink(w io.Writer) *LineSink { return &LineSink{w: w} }

// Emitf formats one line (a trailing newline is appended) and writes it
// under the lock. Safe on a nil sink.
func (s *LineSink) Emitf(format string, args ...interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format+"\n", args...)
}

// Err returns the first write error.
func (s *LineSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Handler serves the registry as a live metrics endpoint. The default
// encoding is the deterministic JSON snapshot (back-compatible with the
// original `smarq-run -listen` surface); `?format=prometheus` — or an
// Accept header preferring text/plain — selects the Prometheus text
// exposition instead. Both encodings emit sorted metric names, so two
// scrapes of identical registry states are byte-identical regardless of
// registration order. Instrument reads are atomic, so serving
// concurrently with a running system is safe.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// PrometheusContentType is the content type of the text exposition
// format served to scrapers.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus resolves a metrics request's encoding: an explicit
// ?format= wins, then an Accept header that names text/plain without
// naming application/json.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") &&
		!strings.Contains(accept, "application/json")
}
