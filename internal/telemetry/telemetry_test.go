package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestAppendJSONGolden(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{Cycle: 120, Kind: KindCompile, Region: 3, Tier: 0, To: -1,
				Cost: 40, A: 12, B: 9, C: 4, D: 2},
			`{"cycle":120,"ev":"compile","region":3,"tier":"t0","cost":40,"ops":12,"guest":9,"mem":4,"ws":2}`,
		},
		{
			Event{Cycle: 200, Kind: KindCommit, Region: 3, Tier: 0, To: -1,
				Cost: 14, A: 2, B: 1},
			`{"cycle":200,"ev":"commit","region":3,"tier":"t0","cost":14,"occupancy":2,"stores":1}`,
		},
		{
			Event{Cycle: 300, Kind: KindRollback, Region: 3, Tier: 0, To: -1,
				Cause: CauseAlias, Cost: 64, A: 7},
			`{"cycle":300,"ev":"rollback","region":3,"tier":"t0","cause":"alias","cost":64,"ops":7}`,
		},
		{
			Event{Cycle: 301, Kind: KindDemote, Region: 3, Tier: 1, To: 2,
				Cause: CauseRate},
			`{"cycle":301,"ev":"demote","region":3,"tier":"t1","to":"t2","cause":"rollback-rate"}`,
		},
		{
			Event{Kind: KindMeta, Region: -1, Tier: -1, To: -1, Run: 2,
				Name: "swim/smarq"},
			`{"cycle":0,"ev":"meta","run":2,"name":"swim/smarq"}`,
		},
	}
	for _, c := range cases {
		got := string(AppendJSON(nil, &c.ev))
		if got != c.want {
			t.Errorf("AppendJSON(%v)\n got %s\nwant %s", c.ev, got, c.want)
		}
		// Every line must also be valid JSON.
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(got), &m); err != nil {
			t.Errorf("AppendJSON(%v) not valid JSON: %v", c.ev, err)
		}
	}
}

// collectSink records every batch it receives.
type collectSink struct {
	events []Event
	closed bool
	err    error
}

func (s *collectSink) WriteEvents(evs []Event) error {
	if s.err != nil {
		return s.err
	}
	s.events = append(s.events, evs...)
	return nil
}

func (s *collectSink) Close() error { s.closed = true; return nil }

func TestTracerStreamingLosesNothing(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(8, sink)
	const n = 100
	for i := 0; i < n; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindDispatch, Region: -1, Tier: -1, To: -1})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != n {
		t.Fatalf("streamed %d events, want %d", len(sink.events), n)
	}
	for i, e := range sink.events {
		if e.Cycle != int64(i) {
			t.Fatalf("event %d out of order: cycle %d", i, e.Cycle)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("streaming tracer dropped %d", tr.Dropped())
	}
}

func TestTracerFlightRecorderKeepsNewest(t *testing.T) {
	tr := NewTracer(8, nil)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Cycle: int64(i), Region: -1, Tier: -1, To: -1})
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("flight recorder holds %d, want 8", len(evs))
	}
	for i, e := range evs {
		if want := int64(12 + i); e.Cycle != want {
			t.Fatalf("event %d: cycle %d, want %d", i, e.Cycle, want)
		}
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", tr.Dropped())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestTracerSinkErrorSticky(t *testing.T) {
	boom := errors.New("boom")
	sink := &collectSink{err: boom}
	tr := NewTracer(4, sink)
	for i := 0; i < 10; i++ { // force a drain mid-emission
		tr.Emit(Event{Region: -1, Tier: -1, To: -1})
	}
	if err := tr.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
	// The run keeps going: further emits must not panic.
	tr.Emit(Event{Region: -1, Tier: -1, To: -1})
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want %v", err, boom)
	}
	if !sink.closed {
		t.Fatal("Close did not close the sink")
	}
}

func TestEmitZeroAlloc(t *testing.T) {
	tr := NewTracer(16, nil) // flight recorder: wraps constantly
	ev := Event{Kind: KindCommit, Region: 5, Tier: 0, To: -1, Cost: 10}
	if n := testing.AllocsPerRun(200, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("Emit allocates %.1f per op, want 0", n)
	}
	reg := NewRegistry()
	c := reg.Counter("commits")
	h := reg.Histogram("cost", []int64{8, 64, 512})
	if n := testing.AllocsPerRun(200, func() { c.Add(1); h.Observe(37) }); n != 0 {
		t.Fatalf("Add+Observe allocates %.1f per op, want 0", n)
	}
}

func TestJSONLSinkDeterministic(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		tr := NewTracer(4, NewJSONLSink(&buf))
		for i := 0; i < 10; i++ {
			tr.Emit(Event{Cycle: int64(i * 10), Kind: KindCommit, Region: 1,
				Tier: 0, To: -1, Cost: 5, A: int64(i % 3)})
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("identical event streams encoded differently:\n%s\nvs\n%s", a, b)
	}
	if got := strings.Count(a, "\n"); got != 10 {
		t.Fatalf("got %d lines, want 10", got)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4, NewChromeSink(&buf)) // tiny ring: multi-batch drains
	tr.Run = 1
	tr.Emit(Event{Kind: KindMeta, Region: -1, Tier: -1, To: -1, Name: "swim/smarq"})
	tr.Emit(Event{Cycle: 50, Kind: KindCompile, Region: 3, Tier: 0, To: -1, Cost: 40, A: 12})
	tr.Emit(Event{Cycle: 90, Kind: KindDispatch, Region: 3, Tier: 0, To: -1})
	tr.Emit(Event{Cycle: 130, Kind: KindCommit, Region: 3, Tier: 0, To: -1, Cost: 40, A: 2, B: 1})
	tr.Emit(Event{Cycle: 200, Kind: KindRollback, Region: 3, Tier: 0, To: -1, Cause: CauseAlias, Cost: 70, A: 7})
	tr.Emit(Event{Cycle: 201, Kind: KindDemote, Region: 3, Tier: 0, To: 1, Cause: CauseRate})
	tr.Emit(Event{Cycle: 400, Kind: KindEvict, Region: 3, Tier: 1, To: -1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Ts   int64                  `json:"ts"`
			Dur  int64                  `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var haveCommit, haveRollback, haveProcName, haveThreadName bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "commit" && e.Ph == "X":
			haveCommit = true
			if e.Ts != 90 || e.Dur != 40 {
				t.Errorf("commit slice ts=%d dur=%d, want ts=90 dur=40", e.Ts, e.Dur)
			}
			if e.Tid != 4 { // region 3 → tid 4
				t.Errorf("commit tid=%d, want 4", e.Tid)
			}
		case strings.HasPrefix(e.Name, "rollback") && e.Ph == "X":
			haveRollback = true
			if e.Name != "rollback:alias" {
				t.Errorf("rollback name %q, want rollback:alias", e.Name)
			}
		case e.Name == "process_name" && e.Ph == "M":
			haveProcName = true
			if e.Args["name"] != "swim/smarq" {
				t.Errorf("process_name args %v", e.Args)
			}
		case e.Name == "thread_name" && e.Ph == "M":
			haveThreadName = true
		case e.Name == "dispatch":
			t.Error("dispatch events must be skipped in chrome traces")
		}
	}
	if !haveCommit || !haveRollback || !haveProcName || !haveThreadName {
		t.Fatalf("missing records: commit=%v rollback=%v proc=%v thread=%v\n%s",
			haveCommit, haveRollback, haveProcName, haveThreadName, buf.String())
	}
}

func TestChromeSinkFirstEventMeta(t *testing.T) {
	// Regression: a KindMeta first record, then a normal one across a
	// second WriteEvents batch — the separator state must span batches.
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.WriteEvents([]Event{{Kind: KindMeta, Region: -1, Tier: -1, To: -1, Name: "r"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteEvents([]Event{{Cycle: 5, Kind: KindCompile, Region: 0, Tier: 0, To: -1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("zebra").Add(3)
		r.Counter("alpha").Add(1)
		h := r.Histogram("cost", []int64{8, 64})
		h.Observe(4)
		h.Observe(100)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("registry snapshots differ:\n%s\nvs\n%s", a, b)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Sum     int64 `json:"sum"`
			Buckets []struct {
				Le string `json:"le"`
				N  int64  `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(a), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["zebra"] != 3 || snap.Counters["alpha"] != 1 {
		t.Fatalf("counters wrong: %v", snap.Counters)
	}
	h := snap.Histograms["cost"]
	if h.Count != 2 || h.Sum != 104 {
		t.Fatalf("histogram count=%d sum=%d, want 2/104", h.Count, h.Sum)
	}
	if len(h.Buckets) != 3 || h.Buckets[0].N != 1 || h.Buckets[2].N != 1 ||
		h.Buckets[2].Le != "+Inf" {
		t.Fatalf("buckets wrong: %+v", h.Buckets)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []int64{10, 20})
	for _, v := range []int64{10, 11, 20, 21} {
		h.Observe(v)
	}
	want := []int64{1, 2, 1} // 10 | 11,20 | 21
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: %d, want %d", i, got, w)
		}
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should be inert")
	}
	h := r.Histogram("y", []int64{1})
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should be inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tel *Telemetry
	if tel.Tracer() != nil || tel.Registry() != nil {
		t.Fatal("nil Telemetry should expose nil surfaces")
	}
}

func TestPow2Bounds(t *testing.T) {
	got := Pow2Bounds(16, 256)
	want := []int64{16, 32, 64, 128, 256}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLineSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewLineSink(&buf)
	s.Emitf("# %s: %d", "swim", 42)
	if got := buf.String(); got != "# swim: 42\n" {
		t.Fatalf("got %q", got)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	var nilSink *LineSink
	nilSink.Emitf("dropped %d", 1)
	if nilSink.Err() != nil {
		t.Fatal("nil LineSink should be inert")
	}
}
