package telemetry

import "sync"

// Sink consumes batches of events drained from a tracer's ring. Sinks are
// only invoked off the hot path — when the ring fills, on Flush, and on
// Close — so they may allocate, buffer and write freely.
type Sink interface {
	// WriteEvents consumes one ordered batch. The slice is only valid for
	// the duration of the call.
	WriteEvents([]Event) error
	// Close finalizes the sink's output (trailers, buffered bytes). It
	// does not close an underlying file the caller opened.
	Close() error
}

// DefaultRingCapacity is the tracer ring size when NewTracer is given a
// non-positive capacity: large enough that streaming drains stay rare,
// small enough (a few MB of value structs) to sit in a long-lived soak.
const DefaultRingCapacity = 1 << 15

// Tracer is a fixed-capacity ring buffer of value-typed events.
//
// With a sink attached the tracer streams: a full ring drains to the sink
// and recording continues, so no event is lost. Without a sink it is a
// flight recorder: the ring keeps the most recent events, overwriting the
// oldest and counting the overwritten in Dropped.
//
// Emit performs no heap allocation in either mode (sink drains allocate,
// but only when the ring wraps — never per event). A Tracer is not safe
// for concurrent use; each dynopt.System owns at most one. A nil *Tracer
// is a valid disabled tracer: Emit, Flush and Close are no-ops.
type Tracer struct {
	// Run is stamped into every emitted event; the figure harness gives
	// each concurrent run a distinct Run so one shared sink can tell the
	// interleaved streams apart. Zero for single-run traces.
	Run int32

	ring    []Event
	head, n int
	sink    Sink
	dropped int64
	err     error
}

// NewTracer returns a tracer with the given ring capacity (non-positive
// means DefaultRingCapacity) draining to sink (nil = flight recorder).
func NewTracer(capacity int, sink Sink) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{ring: make([]Event, capacity), sink: sink}
}

// Emit records one event. Allocation-free; safe on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	e.Run = t.Run
	if t.n == len(t.ring) {
		if t.sink == nil {
			// Flight recorder: overwrite the oldest.
			t.ring[t.head] = e
			t.head++
			if t.head == len(t.ring) {
				t.head = 0
			}
			t.dropped++
			return
		}
		t.drain()
	}
	i := t.head + t.n
	if i >= len(t.ring) {
		i -= len(t.ring)
	}
	t.ring[i] = e
	t.n++
}

// drain writes the ring's contents to the sink in order and empties it.
// Sink errors are sticky (Err/Flush/Close report the first one); tracing
// continues so a failed disk write never aborts the simulated run.
func (t *Tracer) drain() {
	if t.n == 0 {
		return
	}
	write := func(evs []Event) {
		if t.sink == nil || len(evs) == 0 {
			return
		}
		if err := t.sink.WriteEvents(evs); err != nil && t.err == nil {
			t.err = err
		}
	}
	if wrap := t.head + t.n - len(t.ring); wrap > 0 {
		write(t.ring[t.head:])
		write(t.ring[:wrap])
	} else {
		write(t.ring[t.head : t.head+t.n])
	}
	t.head, t.n = 0, 0
}

// Flush drains buffered events to the sink (no-op without one) and
// returns the first sink error seen so far.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.sink != nil {
		t.drain()
	}
	return t.err
}

// Close flushes and closes the sink. The tracer stays usable as a flight
// recorder afterwards, but nothing further reaches the sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.sink != nil {
		if cerr := t.sink.Close(); cerr != nil && err == nil {
			err = cerr
		}
		t.sink = nil
	}
	return err
}

// Events returns the buffered events, oldest first (the flight-recorder
// dump). The returned slice is freshly allocated.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		out[i] = t.ring[j]
	}
	return out
}

// Dropped reports how many events the flight recorder overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Err returns the first sink error.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// SyncSink serializes concurrent tracers' drains onto one underlying
// sink — the figure harness wraps its shared trace sink in one so every
// per-run tracer can stream into the same file. Batches stay contiguous;
// interleaving across batches follows completion order (deterministic
// only at parallelism 1).
type SyncSink struct {
	mu   sync.Mutex
	sink Sink
}

// NewSyncSink wraps sink for concurrent use.
func NewSyncSink(sink Sink) *SyncSink { return &SyncSink{sink: sink} }

// WriteEvents implements Sink.
func (s *SyncSink) WriteEvents(evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.WriteEvents(evs)
}

// Close implements Sink. Safe to call once after all tracers closed.
func (s *SyncSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Close()
}
