// Package vliw models the in-order VLIW target of the paper's experiments:
// a statically scheduled machine with a configurable issue width, memory
// ports, and operation latencies (the paper's Table 2 equivalent), plus the
// atomic-region and alias-detection hardware the dynamic optimization
// system relies on.
//
// The model is deliberately cache-less: every latency is fixed, so a
// scheduled region has a deterministic cycle count and experiments are
// exactly reproducible. Speedups in this model come from the same source as
// on the paper's machine — hiding load and floating-point latencies by
// hoisting loads across (possibly aliasing) stores on an in-order pipeline.
package vliw

import (
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// PortClass says which issue resource an operation consumes.
type PortClass uint8

const (
	// ALUPort: integer/float ALU slots (also rotates, AMOVs, guards).
	ALUPort PortClass = iota
	// MemPort: load/store slots.
	MemPort
)

// Config holds the machine parameters (the reproduction of Table 2).
type Config struct {
	// IssueWidth is the total operations per bundle.
	IssueWidth int
	// MemPorts is the maximum memory operations per bundle.
	MemPorts int
	// Latencies in cycles.
	IntLat, MemLat, FPLat, FDivLat, FSqrtLat int
	// AliasRegs is the physical alias register count (64 in the paper).
	AliasRegs int
	// RollbackPenalty is charged when an atomic region aborts (alias
	// exception, failed guard, or fault) before re-execution begins.
	RollbackPenalty int
	// CommitCycles is charged when a region commits.
	CommitCycles int
	// InterpCyclesPerInst models the interpreter's cost per guest
	// instruction relative to native cycles.
	InterpCyclesPerInst int
	// OptCyclesPerOp and SchedCyclesPerOp charge the optimizer's own
	// execution time (the paper's Figure 18 measures it with markers
	// around the algorithm): cycles per IR op for the non-scheduling
	// passes and for scheduling + alias register allocation respectively.
	OptCyclesPerOp, SchedCyclesPerOp int
	// CompileCyclesPerInst and CompileCyclesPerCheck parameterize the
	// background-compilation latency model (dynopt.CompileConfig): an
	// enqueued region occupies CompileCyclesPerInst per guest instruction
	// plus CompileCyclesPerCheck per guest memory operation of simulated
	// time before its code may install. Both are derived from the
	// superblock alone — never from the compile result — so the install
	// point is fixed at enqueue and identical at any host worker count.
	CompileCyclesPerInst, CompileCyclesPerCheck int
}

// DefaultConfig mirrors the paper's machine as closely as the published
// parameters allow: 64 alias registers, a wide in-order VLIW.
func DefaultConfig() Config {
	return Config{
		IssueWidth:            4,
		MemPorts:              2,
		IntLat:                1,
		MemLat:                3,
		FPLat:                 4,
		FDivLat:               12,
		FSqrtLat:              16,
		AliasRegs:             64,
		RollbackPenalty:       100,
		CommitCycles:          2,
		InterpCyclesPerInst:   12,
		OptCyclesPerOp:        60,
		SchedCyclesPerOp:      55,
		CompileCyclesPerInst:  120,
		CompileCyclesPerCheck: 40,
	}
}

// IssueCycles returns the in-order issue cycle of every op in seq, using
// the same model as CycleCount. Trace tools use it to show the static
// schedule the way a VLIW bundle dump would.
func (c Config) IssueCycles(seq []*ir.Op, numVRegs int) []int64 {
	out := make([]int64, len(seq))
	readyAt := make([]int64, numVRegs)
	var clock int64
	alu, mem := 0, 0
	advance := func(to int64) {
		if to <= clock {
			to = clock + 1
		}
		clock = to
		alu, mem = 0, 0
	}
	for i, op := range seq {
		var earliest int64
		for _, s := range op.Srcs {
			if s != ir.NoVReg && readyAt[s] > earliest {
				earliest = readyAt[s]
			}
		}
		if earliest > clock {
			advance(earliest)
		}
		for alu >= c.IssueWidth || (op.IsMem() && mem >= c.MemPorts) {
			advance(clock + 1)
		}
		alu++
		if op.IsMem() {
			mem++
		}
		out[i] = clock
		if op.Dst != ir.NoVReg {
			readyAt[op.Dst] = clock + int64(c.Latency(op))
		}
	}
	return out
}

// Latency returns op's result latency in cycles.
func (c Config) Latency(op *ir.Op) int {
	switch op.Kind {
	case ir.Load:
		return c.MemLat
	case ir.Store, ir.Guard, ir.Rotate, ir.AMov, ir.Copy:
		return 1
	}
	// Arith: decided by the guest opcode.
	switch op.GOp {
	case guest.FDiv:
		return c.FDivLat
	case guest.FSqrt:
		return c.FSqrtLat
	}
	if op.GOp.IsFloat() {
		return c.FPLat
	}
	return c.IntLat
}

// Class returns the issue resource op consumes.
func (c Config) Class(op *ir.Op) PortClass {
	if op.IsMem() {
		return MemPort
	}
	return ALUPort
}
