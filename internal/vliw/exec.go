// The allocation-free region execution engine.
//
// Compile pre-decodes the scheduled []*ir.Op sequence into a flat array
// of decOp value structs, so the steady-state execute loop walks
// contiguous memory with no per-op pointer chasing. ExecContext owns the
// reusable per-system state — the virtual register files and one pooled
// atomic.Region — so a committed region entry performs zero heap
// allocations. The detector is devirtualized once per entry: a type
// switch picks a concrete fast path (OrderedQueue/ALAT/Bitmask/None) and
// conflicts come back by value, so the no-conflict path never allocates
// either. executeRef in machine.go preserves the original semantics;
// differential tests hold the two engines bit-identical.

package vliw

import (
	"fmt"
	"math"

	"smarq/internal/aliashw"
	"smarq/internal/atomic"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// decOp is one pre-decoded operation: every field the execute loop needs,
// flattened out of ir.Op (and its Srcs/SrcFloat slices and *MemInfo) into
// a value struct.
type decOp struct {
	imm    int64
	fimm   float64
	memOff int64

	id       int32 // original op ID — the alias-conflict identity
	dst      int32
	src0     int32
	src1     int32
	memBase  int32
	arOffset int32
	amount   int32 // Rotate amount
	srcOff   int32 // AMov source offset
	dstOff   int32 // AMov destination offset

	arMask  uint16
	memSize uint8

	kind ir.Kind
	gop  guest.Opcode

	dstFloat     bool
	srcFloat0    bool
	p, c         bool
	onTraceTaken bool
}

// decode flattens a scheduled sequence into the executable form. Unknown
// kinds fail at compile time rather than execution time.
func decode(seq []*ir.Op) []decOp {
	dec := make([]decOp, len(seq))
	for i, op := range seq {
		d := &dec[i]
		d.id = int32(op.ID)
		d.kind = op.Kind
		d.gop = op.GOp
		d.dst = int32(op.Dst)
		d.src0, d.src1 = int32(ir.NoVReg), int32(ir.NoVReg)
		if len(op.Srcs) > 0 {
			d.src0 = int32(op.Srcs[0])
			d.srcFloat0 = op.SrcFloat[0]
		}
		if len(op.Srcs) > 1 {
			d.src1 = int32(op.Srcs[1])
		}
		d.dstFloat = op.DstFloat
		d.imm = op.Imm
		d.fimm = op.FImm
		if op.Mem != nil {
			d.memBase = int32(op.Mem.Base)
			d.memOff = op.Mem.Off
			d.memSize = uint8(op.Mem.Size)
		}
		d.arOffset = int32(op.AROffset)
		d.arMask = op.ARMask
		d.p, d.c = op.P, op.C
		d.onTraceTaken = op.OnTraceTaken
		d.amount = int32(op.Amount)
		d.srcOff, d.dstOff = int32(op.SrcOff), int32(op.DstOff)
		switch op.Kind {
		case ir.Arith, ir.Copy, ir.Load, ir.Store, ir.Guard, ir.Rotate, ir.AMov:
		default:
			panic(fmt.Sprintf("vliw: cannot decode op kind %v", op.Kind))
		}
	}
	return dec
}

// detKind tags the concrete detector type resolved once per region entry.
type detKind uint8

const (
	detGeneric detKind = iota
	detOrdered
	detALAT
	detBitmask
	detNone
)

// detDispatch routes OnMem to the concrete detector without interface
// dispatch on the hot path; the generic arm keeps third-party Detector
// implementations working.
type detDispatch struct {
	kind detKind
	oq   *aliashw.OrderedQueue
	al   *aliashw.ALAT
	bm   *aliashw.Bitmask
	det  aliashw.Detector
}

func dispatchFor(det aliashw.Detector) detDispatch {
	switch d := det.(type) {
	case *aliashw.OrderedQueue:
		return detDispatch{kind: detOrdered, oq: d, det: det}
	case *aliashw.ALAT:
		return detDispatch{kind: detALAT, al: d, det: det}
	case *aliashw.Bitmask:
		return detDispatch{kind: detBitmask, bm: d, det: det}
	case aliashw.None:
		return detDispatch{kind: detNone, det: det}
	default:
		return detDispatch{kind: detGeneric, det: det}
	}
}

// onMem performs the alias check/set for one memory op, returning the
// conflict by value (hit=false on the common no-conflict path).
func (dd *detDispatch) onMem(op *decOp, isStore bool, lo, hi uint64) (aliashw.Conflict, bool) {
	switch dd.kind {
	case detOrdered:
		return dd.oq.OnMemV(int(op.id), isStore, op.p, op.c, int(op.arOffset), lo, hi)
	case detALAT:
		return dd.al.OnMemV(int(op.id), isStore, op.p, op.c, lo, hi)
	case detBitmask:
		return dd.bm.OnMemV(int(op.id), isStore, op.p, op.c, int(op.arOffset), op.arMask, lo, hi)
	case detNone:
		return aliashw.Conflict{}, false
	default:
		if cp := dd.det.OnMem(int(op.id), isStore, op.p, op.c, int(op.arOffset), op.arMask, lo, hi); cp != nil {
			return *cp, true
		}
		return aliashw.Conflict{}, false
	}
}

// rotate and amov are cold relative to OnMem but still devirtualized for
// the ordered queue (the only hardware where they do anything).
func (dd *detDispatch) rotate(n int) {
	if dd.kind == detOrdered {
		dd.oq.Rotate(n)
		return
	}
	dd.det.Rotate(n)
}

func (dd *detDispatch) amov(src, dst int) {
	if dd.kind == detOrdered {
		dd.oq.AMov(src, dst)
		return
	}
	dd.det.AMov(src, dst)
}

// ExecContext is the reusable per-system execution state: the virtual
// register files and the pooled atomic region. A zero ExecContext is
// ready to use; it must not be shared between concurrently executing
// systems. Pooling preserves the atomic.Region single-use contract —
// each entry re-arms the same region, and between Begin and
// Commit/Rollback it behaves exactly like a fresh one.
type ExecContext struct {
	vri []int64
	vrf []float64
	ar  atomic.Region
}

// Execute runs a compiled region against the guest state, memory, and
// alias detector, inside an atomic region. On anything but Commit the
// architectural state is rolled back to the region entry and the detector
// reset. The steady-state commit path performs zero heap allocations.
func (ctx *ExecContext) Execute(cr *CompiledRegion, st *guest.State, mem *guest.Memory, det aliashw.Detector) ExecResult {
	reg := cr.Region
	nv := reg.NumVRegs
	if cap(ctx.vri) < nv {
		ctx.vri = make([]int64, nv)
		ctx.vrf = make([]float64, nv)
	}
	vri := ctx.vri[:nv]
	vrf := ctx.vrf[:nv]
	// Live-ins occupy fixed ranges (ir.Region: vregs [0, 2*NumRegs) are
	// the live-in guest registers, integer file first): vri[0:NumRegs]
	// holds the integer live-ins and vrf[NumRegs:2*NumRegs] the float
	// ones. Bulk-copy those and zero only the complement, matching the
	// fresh-slices semantics of the reference executor without clearing
	// words that are about to be overwritten.
	const nr = guest.NumRegs
	copy(vri[:nr], st.R[:])
	copy(vrf[nr:2*nr], st.F[:])
	clear(vri[nr:])
	clear(vrf[:nr])
	clear(vrf[2*nr:])

	dd := dispatchFor(det)
	dec := cr.dec
	if dec == nil {
		// Hand-assembled CompiledRegion (tests): decode on the fly
		// without caching, so shared regions stay immutable here.
		dec = decode(cr.Seq)
	}

	ctx.ar.Begin(st, mem)
	arHW := int32(0) // alias-register occupancy high-water (telemetry)
	abort := func(out Outcome, conf *aliashw.Conflict, n int) ExecResult {
		buffered := ctx.ar.StoreCount()
		ctx.ar.Rollback()
		det.Reset()
		return ExecResult{Outcome: out, Conflict: conf, OpsExecuted: n,
			ARHighWater: int(arHW), StoresBuffered: buffered}
	}

	for n := range dec {
		op := &dec[n]
		switch op.kind {
		case ir.Arith:
			execArithDec(op, vri, vrf)

		case ir.Copy:
			if op.dstFloat {
				vrf[op.dst] = vrf[op.src0]
			} else {
				vri[op.dst] = vri[op.src0]
			}

		case ir.Load:
			addr := uint64(vri[op.memBase] + op.memOff)
			size := int(op.memSize)
			if op.p && op.arOffset+1 > arHW {
				arHW = op.arOffset + 1
			}
			if conf, hit := dd.onMem(op, false, addr, addr+uint64(size)); hit {
				c := conf
				return abort(AliasException, &c, n)
			}
			bits, err := mem.Load(addr, size)
			if err != nil {
				return abort(Fault, nil, n)
			}
			if op.dstFloat {
				vrf[op.dst] = math.Float64frombits(bits)
			} else {
				vri[op.dst] = int64(bits)
			}

		case ir.Store:
			addr := uint64(vri[op.memBase] + op.memOff)
			size := int(op.memSize)
			if op.p && op.arOffset+1 > arHW {
				arHW = op.arOffset + 1
			}
			if conf, hit := dd.onMem(op, true, addr, addr+uint64(size)); hit {
				c := conf
				return abort(AliasException, &c, n)
			}
			var bits uint64
			if op.srcFloat0 {
				bits = math.Float64bits(vrf[op.src0])
			} else {
				bits = uint64(vri[op.src0])
			}
			if err := ctx.ar.Store(addr, size, bits); err != nil {
				return abort(Fault, nil, n)
			}

		case ir.Guard:
			if evalGuardDec(op, vri) != op.onTraceTaken {
				return abort(GuardFail, nil, n)
			}

		case ir.Rotate:
			dd.rotate(int(op.amount))

		default: // ir.AMov — decode rejects anything else
			dd.amov(int(op.srcOff), int(op.dstOff))
		}
	}

	// Commit: write the live-out virtual registers back to the guest
	// state, make the stores permanent, clear the detector.
	for r := 0; r < guest.NumRegs; r++ {
		st.R[r] = vri[reg.IntOut[r]]
		st.F[r] = vrf[reg.FloatOut[r]]
	}
	buffered := ctx.ar.StoreCount()
	ctx.ar.Commit()
	det.Reset()
	return ExecResult{Outcome: Commit, NextBlock: reg.FinalTarget, OpsExecuted: len(dec),
		ARHighWater: int(arHW), StoresBuffered: buffered}
}

// Execute is the context-free convenience entry point: it runs the region
// through a fresh ExecContext. Long-running callers (the dynopt runtime)
// hold one ExecContext per system and call its Execute method instead, so
// the vreg files, checkpoint and undo log are recycled across entries.
func Execute(cr *CompiledRegion, st *guest.State, mem *guest.Memory, det aliashw.Detector) ExecResult {
	var ctx ExecContext
	return ctx.Execute(cr, st, mem, det)
}

// execArithDec evaluates a register-to-register op on the vreg files,
// mirroring guest.Exec semantics (and execArith in machine.go exactly).
func execArithDec(op *decOp, i []int64, f []float64) {
	switch op.gop {
	case guest.Nop:
	case guest.Li:
		i[op.dst] = op.imm
	case guest.Mov:
		i[op.dst] = i[op.src0]
	case guest.Add:
		i[op.dst] = i[op.src0] + i[op.src1]
	case guest.Sub:
		i[op.dst] = i[op.src0] - i[op.src1]
	case guest.Mul:
		i[op.dst] = i[op.src0] * i[op.src1]
	case guest.Div:
		if i[op.src1] == 0 {
			i[op.dst] = 0
		} else {
			i[op.dst] = i[op.src0] / i[op.src1]
		}
	case guest.And:
		i[op.dst] = i[op.src0] & i[op.src1]
	case guest.Or:
		i[op.dst] = i[op.src0] | i[op.src1]
	case guest.Xor:
		i[op.dst] = i[op.src0] ^ i[op.src1]
	case guest.Shl:
		i[op.dst] = i[op.src0] << (uint64(i[op.src1]) & 63)
	case guest.Shr:
		i[op.dst] = i[op.src0] >> (uint64(i[op.src1]) & 63)
	case guest.Addi:
		i[op.dst] = i[op.src0] + op.imm
	case guest.Muli:
		i[op.dst] = i[op.src0] * op.imm
	case guest.Slt:
		if i[op.src0] < i[op.src1] {
			i[op.dst] = 1
		} else {
			i[op.dst] = 0
		}
	case guest.FLi:
		f[op.dst] = op.fimm
	case guest.FMov:
		f[op.dst] = f[op.src0]
	case guest.FAdd:
		f[op.dst] = f[op.src0] + f[op.src1]
	case guest.FSub:
		f[op.dst] = f[op.src0] - f[op.src1]
	case guest.FMul:
		f[op.dst] = f[op.src0] * f[op.src1]
	case guest.FDiv:
		f[op.dst] = f[op.src0] / f[op.src1]
	case guest.FNeg:
		f[op.dst] = -f[op.src0]
	case guest.FAbs:
		f[op.dst] = math.Abs(f[op.src0])
	case guest.FSqrt:
		f[op.dst] = math.Sqrt(f[op.src0])
	case guest.CvtIF:
		f[op.dst] = float64(i[op.src0])
	case guest.CvtFI:
		i[op.dst] = int64(f[op.src0])
	default:
		panic(fmt.Sprintf("vliw: cannot execute arith op %s", op.gop))
	}
}

// evalGuardDec evaluates a guard's branch condition: true means "taken".
func evalGuardDec(op *decOp, i []int64) bool {
	a, b := i[op.src0], i[op.src1]
	switch op.gop {
	case guest.Beq:
		return a == b
	case guest.Bne:
		return a != b
	case guest.Blt:
		return a < b
	case guest.Bge:
		return a >= b
	default:
		panic(fmt.Sprintf("vliw: guard with opcode %s", op.gop))
	}
}
