package vliw_test

import (
	"math/rand"
	"testing"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/vliw"
	"smarq/internal/xlate"
)

// TestExecuteZeroAllocsOnCommit pins the steady-state commit path of the
// pooled execution engine at zero heap allocations: after one warm-up
// entry (which sizes the vreg files and undo log), a full
// Begin/execute/Commit region entry must not touch the heap.
func TestExecuteZeroAllocsOnCommit(t *testing.T) {
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.Li(1, 64)
		b.Li(2, 128)
		b.Ld8(3, 1, 0)
		b.St8(2, 0, 3)
		b.Ld8(4, 1, 8)
		b.Addi(5, 4, 10)
		b.St8(1, 16, 5)
		b.Ld8(6, 2, 0)
		b.Add(7, 6, 5)
		b.St8(1, 24, 7)
		b.Halt()
	}
	cr, _ := compileGuest(t, 0, sched.HWOrdered, build)
	st := &guest.State{}
	mem := guest.NewMemory(4096)
	det := aliashw.NewOrderedQueue(64)
	var ctx vliw.ExecContext

	if res := ctx.Execute(cr, st, mem, det); res.Outcome != vliw.Commit {
		t.Fatalf("warm-up outcome = %s, want commit", res.Outcome)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if res := ctx.Execute(cr, st, mem, det); res.Outcome != vliw.Commit {
			t.Fatalf("outcome = %s, want commit", res.Outcome)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state commit path allocates %v times per entry, want 0", allocs)
	}
}

// randomRegionProgram builds a random counted-loop guest program for the
// differential engine test: array accesses through four base registers,
// float round trips, narrow accesses, and a loop-back branch that becomes
// the region guard. Deterministic for a given rng.
func randomRegionProgram(rng *rand.Rand) (*guest.Program, int) {
	b := guest.NewBuilder()
	b.NewBlock()
	for i := 0; i < 4; i++ {
		b.Li(guest.Reg(1+i), int64(1<<10)+int64(rng.Intn(4))*512)
	}
	b.Li(5, 0)
	b.Li(7, int64(40+rng.Intn(60)))
	for r := 10; r <= 14; r++ {
		b.Li(guest.Reg(r), int64(rng.Intn(64))*8)
	}
	b.FLi(1, 0.5)
	loop := b.NewBlock()
	nOps := 4 + rng.Intn(12)
	for i := 0; i < nOps; i++ {
		base := guest.Reg(1 + rng.Intn(4))
		off := int64(rng.Intn(32)) * 8
		scratch := guest.Reg(10 + rng.Intn(5))
		switch rng.Intn(8) {
		case 0, 1:
			b.St8(base, off, scratch)
		case 2, 3:
			b.Ld8(scratch, base, off)
		case 4:
			b.FSt8(base, off, 1)
			b.FLd8(2, base, off)
			b.FAdd(1, 1, 2)
		case 5:
			b.Addi(scratch, scratch, int64(rng.Intn(16)))
			b.Mul(11, scratch, 10)
		default:
			b.St4(base, off, scratch)
			b.Ld2(scratch, base, off)
		}
	}
	b.Addi(5, 5, 1)
	b.Blt(5, 7, loop)
	b.NewBlock()
	b.Halt()
	return b.MustProgram(), loop
}

// fuzzCompile runs the full compilation pipeline at seedBlock for the
// given hardware mode, mirroring compileGuest but returning errors so the
// fuzz loop can skip unformable regions.
func fuzzCompile(prog *guest.Program, seedBlock int, mode sched.HWMode) (*vliw.CompiledRegion, error) {
	it := interp.New(prog, &guest.State{}, guest.NewMemory(1<<13))
	if _, err := it.Run(0, 200_000); err != nil {
		return nil, err
	}
	sb, err := region.Form(prog, it.Prof, seedBlock, region.DefaultConfig())
	if err != nil {
		return nil, err
	}
	reg, err := xlate.Translate(sb)
	if err != nil {
		return nil, err
	}
	tbl := alias.BuildTable(reg, nil)
	optCfg := opt.Config{}
	if mode == sched.HWOrdered {
		optCfg = opt.Config{LoadElim: true, StoreElim: true, Speculative: true}
	}
	optRes := opt.Run(reg, tbl, optCfg)
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)
	nar := 64
	if mode == sched.HWBitmask {
		nar = 15
	}
	sc, err := sched.Run(reg, tbl, ds, sched.Config{
		Mode: mode, NumAliasRegs: nar, StoreReorder: true,
		PressureMargin: 4, Machine: vliw.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	return vliw.DefaultConfig().Compile(sc.Seq, reg, len(sb.Insts)), nil
}

// randExecState builds a randomized region-entry state: mostly valid
// array bases (occasionally faulting, occasionally genuinely aliasing)
// and a loop counter/limit pair that sometimes fails the region guard.
func randExecState(rng *rand.Rand) *guest.State {
	st := &guest.State{}
	for r := 1; r < guest.NumRegs; r++ {
		st.R[r] = int64(rng.Intn(256))
		st.F[r] = float64(rng.Intn(64)) / 4
	}
	for r := 1; r <= 4; r++ {
		st.R[r] = int64(rng.Intn(1 << 12))
		if rng.Intn(24) == 0 {
			st.R[r] = 1 << 40 // faulting base
		}
	}
	if rng.Intn(3) == 0 { // force a genuine alias between two bases
		st.R[1+rng.Intn(4)] = st.R[1+rng.Intn(4)]
	}
	st.R[5] = int64(rng.Intn(4)) // loop counter
	st.R[7] = int64(rng.Intn(8)) // limit: counter >= limit fails the guard
	return st
}

func fillMem(mem *guest.Memory, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 128; i++ {
		_ = mem.Store(uint64(rng.Intn(1<<10))*8, 8, uint64(rng.Int63()))
	}
}

// TestExecuteDecodedMatchesReference is the differential test between the
// pre-decoded pooled engine (ExecContext.Execute) and the original
// ir.Op-walking executor (executeRef): on random compiled programs across
// all hardware modes and randomized entry states, both engines must agree
// op-for-op — outcome, next block, conflict identity, ops executed, final
// registers, memory contents, and the detector's Checked() energy proxy.
func TestExecuteDecodedMatchesReference(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	modes := []struct {
		name string
		mode sched.HWMode
		det  func() aliashw.Detector
	}{
		{"ordered64", sched.HWOrdered, func() aliashw.Detector { return aliashw.NewOrderedQueue(64) }},
		{"alat", sched.HWALAT, func() aliashw.Detector { return aliashw.NewALAT() }},
		{"bitmask15", sched.HWBitmask, func() aliashw.Detector { return aliashw.NewBitmask(15) }},
		{"none", sched.HWNone, func() aliashw.Detector { return aliashw.None{} }},
	}
	// One persistent context across every trial, mode, and entry:
	// exercises pooling hygiene (stale vregs, undo log, checkpoint reuse).
	var ctx vliw.ExecContext
	outcomes := map[vliw.Outcome]int{}

	for trial := 0; trial < trials; trial++ {
		seed := int64(4000 + trial)
		for _, m := range modes {
			// Rebuild the program per mode: translation annotates it.
			prog, loop := randomRegionProgram(rand.New(rand.NewSource(seed)))
			cr, err := fuzzCompile(prog, loop, m.mode)
			if err != nil {
				t.Logf("trial %d/%s: skip (compile: %v)", trial, m.name, err)
				continue
			}
			rng := rand.New(rand.NewSource(seed * 31))
			for entry := 0; entry < 6; entry++ {
				stRef := randExecState(rng)
				stDec := *stRef
				memRef := guest.NewMemory(1 << 13)
				memDec := guest.NewMemory(1 << 13)
				fillMem(memRef, seed+int64(entry))
				fillMem(memDec, seed+int64(entry))
				detRef, detDec := m.det(), m.det()

				resRef := vliw.ExecuteRef(cr, stRef, memRef, detRef)
				resDec := ctx.Execute(cr, &stDec, memDec, detDec)
				outcomes[resDec.Outcome]++

				id := func() string { return m.name }
				if resDec.Outcome != resRef.Outcome {
					t.Fatalf("trial %d/%s entry %d: outcome %s, reference %s",
						trial, id(), entry, resDec.Outcome, resRef.Outcome)
				}
				if resDec.NextBlock != resRef.NextBlock || resDec.OpsExecuted != resRef.OpsExecuted {
					t.Fatalf("trial %d/%s entry %d: next/ops = %d/%d, reference %d/%d",
						trial, id(), entry, resDec.NextBlock, resDec.OpsExecuted,
						resRef.NextBlock, resRef.OpsExecuted)
				}
				if (resDec.Conflict == nil) != (resRef.Conflict == nil) {
					t.Fatalf("trial %d/%s entry %d: conflict %v, reference %v",
						trial, id(), entry, resDec.Conflict, resRef.Conflict)
				}
				if resDec.Conflict != nil && *resDec.Conflict != *resRef.Conflict {
					t.Fatalf("trial %d/%s entry %d: conflict %+v, reference %+v",
						trial, id(), entry, *resDec.Conflict, *resRef.Conflict)
				}
				for r := 0; r < guest.NumRegs; r++ {
					if stDec.R[r] != stRef.R[r] || stDec.F[r] != stRef.F[r] {
						t.Fatalf("trial %d/%s entry %d: r%d/f%d = %d/%v, reference %d/%v",
							trial, id(), entry, r, r, stDec.R[r], stDec.F[r], stRef.R[r], stRef.F[r])
					}
				}
				if memDec.Digest() != memRef.Digest() {
					t.Fatalf("trial %d/%s entry %d: memory digest diverged", trial, id(), entry)
				}
				if detDec.Checked() != detRef.Checked() {
					t.Fatalf("trial %d/%s entry %d: Checked() = %d, reference %d",
						trial, id(), entry, detDec.Checked(), detRef.Checked())
				}
			}
		}
	}

	// The differential is only meaningful if it drove every outcome class
	// the engines distinguish (alias exceptions depend on speculation
	// actually being wrong, so only require them non-strictly).
	if outcomes[vliw.Commit] == 0 {
		t.Error("differential never committed a region")
	}
	if outcomes[vliw.GuardFail] == 0 {
		t.Error("differential never failed a guard")
	}
	if outcomes[vliw.Fault] == 0 {
		t.Error("differential never faulted")
	}
	if outcomes[vliw.AliasException] == 0 {
		t.Log("note: no alias exceptions driven (speculation never wrong)")
	}
	t.Logf("outcomes: %v", outcomes)
}
