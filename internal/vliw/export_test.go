package vliw

// ExecuteRef exposes the original *ir.Op-walking executor to the external
// test package: the differential tests run it against the pre-decoded
// engine and require bit-identical results.
var ExecuteRef = executeRef
