package vliw

import (
	"fmt"
	"math"
	"unsafe"

	"smarq/internal/aliashw"
	"smarq/internal/atomic"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// Outcome classifies how a region execution ended.
type Outcome uint8

const (
	// Commit: every guard held, no alias exception; effects are permanent
	// and control continues at the region's final target.
	Commit Outcome = iota
	// GuardFail: a side-exit branch went off-trace; the region rolled
	// back and the runtime must resume in the interpreter.
	GuardFail
	// AliasException: the alias hardware detected a violated speculation;
	// the region rolled back and must be re-optimized conservatively.
	AliasException
	// Fault: a guest memory fault inside the region (possibly induced by
	// speculation); the region rolled back.
	Fault
)

var outcomeNames = map[Outcome]string{
	Commit: "commit", GuardFail: "guard-fail",
	AliasException: "alias-exception", Fault: "fault",
}

// String returns the outcome name.
func (o Outcome) String() string { return outcomeNames[o] }

// ExecResult reports one region execution.
type ExecResult struct {
	Outcome Outcome
	// NextBlock is where control continues after a commit (interp.HaltID
	// when the region ends the program).
	NextBlock int
	// Conflict identifies the aliasing op pair on AliasException.
	Conflict *aliashw.Conflict
	// OpsExecuted counts ops retired before the region ended (stats).
	OpsExecuted int
	// ARHighWater is the alias-register occupancy high-water mark of the
	// execution: the highest queue slot (+1) an executed P-bit memory op
	// claimed. Telemetry-only; filled by the decoded engine, left zero by
	// the reference executor.
	ARHighWater int
	// StoresBuffered is how many stores the atomic region had buffered
	// when the execution ended (committed or discarded). Telemetry-only;
	// filled by the decoded engine, left zero by the reference executor.
	StoresBuffered int
}

// CompiledRegion is an installed translation: the scheduled sequence, its
// source region, the precomputed static cycle cost of one complete
// execution, and the pre-decoded flat op stream the executor consumes.
type CompiledRegion struct {
	Seq    []*ir.Op
	Region *ir.Region
	// Cycles is the in-order issue cycle count of Seq on this machine.
	Cycles int64
	// GuestInsts is the number of guest instructions a committed
	// execution retires.
	GuestInsts int
	// dec is Seq pre-decoded into a flat array of value structs so the
	// execute loop walks contiguous memory instead of chasing *ir.Op
	// pointers (see exec.go).
	dec []decOp
}

// Compile packages a scheduled sequence for execution, computing its
// static cycle cost and pre-decoding the op stream.
func (c Config) Compile(seq []*ir.Op, reg *ir.Region, guestInsts int) *CompiledRegion {
	return &CompiledRegion{
		Seq:        seq,
		Region:     reg,
		Cycles:     c.CycleCount(seq, reg.NumVRegs),
		GuestInsts: guestInsts,
		dec:        decode(seq),
	}
}

// Bytes estimates the region's retained heap footprint: the struct
// itself, the schedule's pointer slice, the pre-decoded op stream, and the
// frozen region slabs (ir.Freeze packs ops, operand lists, flags and mem
// infos into exact-capacity arrays, so slab lengths are exactly the live
// element counts). Seq points into the same frozen op slab as Region.Ops,
// so op structs are counted once via Region.Ops. The result depends only
// on the region's structure — never on addresses or host state — so it is
// deterministic and safe to fold into cache-eviction decisions.
func (cr *CompiledRegion) Bytes() int64 {
	const ptrSize = int64(unsafe.Sizeof((*ir.Op)(nil)))
	n := int64(unsafe.Sizeof(*cr))
	n += int64(len(cr.Seq)) * ptrSize
	n += int64(len(cr.dec)) * int64(unsafe.Sizeof(decOp{}))
	reg := cr.Region
	if reg == nil {
		return n
	}
	n += int64(unsafe.Sizeof(*reg))
	n += int64(len(reg.Ops)) * ptrSize
	for _, o := range reg.Ops {
		n += int64(unsafe.Sizeof(*o))
		n += int64(len(o.Srcs)) * int64(unsafe.Sizeof(ir.VReg(0)))
		n += int64(len(o.SrcFloat)) // one byte per bool flag
		if o.Mem != nil {
			n += int64(unsafe.Sizeof(*o.Mem))
		}
	}
	return n
}

// CycleCount models in-order VLIW issue of the sequence: ops issue in
// order, each waiting for its operands (fixed latencies) and for a free
// slot of its class (IssueWidth total, MemPorts for memory ops). Because
// latencies are fixed, the count is exact and deterministic. It equals
// the last op's issue cycle (per IssueCycles) plus one.
func (c Config) CycleCount(seq []*ir.Op, numVRegs int) int64 {
	cycles := c.IssueCycles(seq, numVRegs)
	if len(cycles) == 0 {
		return 1
	}
	return cycles[len(cycles)-1] + 1
}

// vregFile holds the region's virtual register values during execution.
type vregFile struct {
	i []int64
	f []float64
}

// executeRef is the original *ir.Op-walking executor, kept verbatim as
// the reference semantics for the pre-decoded engine in exec.go: the
// differential tests drive both on the same programs and require
// bit-identical outcomes. It allocates per entry (vreg files, checkpoint,
// undo log); the production path is ExecContext.Execute.
func executeRef(cr *CompiledRegion, st *guest.State, mem *guest.Memory, det aliashw.Detector) ExecResult {
	reg := cr.Region
	vr := vregFile{i: make([]int64, reg.NumVRegs), f: make([]float64, reg.NumVRegs)}
	for r := 0; r < guest.NumRegs; r++ {
		vr.i[ir.LiveInInt(guest.Reg(r))] = st.R[r]
		vr.f[ir.LiveInFloat(guest.Reg(r))] = st.F[r]
	}

	ar := atomic.Begin(st, mem)
	abort := func(out Outcome, conf *aliashw.Conflict, n int) ExecResult {
		ar.Rollback()
		det.Reset()
		return ExecResult{Outcome: out, Conflict: conf, OpsExecuted: n}
	}

	for n, op := range cr.Seq {
		switch op.Kind {
		case ir.Arith:
			execArith(op, &vr)

		case ir.Copy:
			if op.DstFloat {
				vr.f[op.Dst] = vr.f[op.Srcs[0]]
			} else {
				vr.i[op.Dst] = vr.i[op.Srcs[0]]
			}

		case ir.Load:
			addr := uint64(vr.i[op.Mem.Base] + op.Mem.Off)
			size := op.Mem.Size
			if conf := det.OnMem(op.ID, false, op.P, op.C, op.AROffset, op.ARMask, addr, addr+uint64(size)); conf != nil {
				return abort(AliasException, conf, n)
			}
			bits, err := mem.Load(addr, size)
			if err != nil {
				return abort(Fault, nil, n)
			}
			if op.DstFloat {
				vr.f[op.Dst] = math.Float64frombits(bits)
			} else {
				vr.i[op.Dst] = int64(bits)
			}

		case ir.Store:
			addr := uint64(vr.i[op.Mem.Base] + op.Mem.Off)
			size := op.Mem.Size
			if conf := det.OnMem(op.ID, true, op.P, op.C, op.AROffset, op.ARMask, addr, addr+uint64(size)); conf != nil {
				return abort(AliasException, conf, n)
			}
			var bits uint64
			if op.SrcFloat[0] {
				bits = math.Float64bits(vr.f[op.Srcs[0]])
			} else {
				bits = uint64(vr.i[op.Srcs[0]])
			}
			if err := ar.Store(addr, size, bits); err != nil {
				return abort(Fault, nil, n)
			}

		case ir.Guard:
			if evalGuard(op, &vr) != op.OnTraceTaken {
				return abort(GuardFail, nil, n)
			}

		case ir.Rotate:
			det.Rotate(op.Amount)

		case ir.AMov:
			det.AMov(op.SrcOff, op.DstOff)

		default:
			panic(fmt.Sprintf("vliw: cannot execute op kind %v", op.Kind))
		}
	}

	// Commit: write the live-out virtual registers back to the guest
	// state, make the stores permanent, clear the detector.
	for r := 0; r < guest.NumRegs; r++ {
		st.R[r] = vr.i[reg.IntOut[r]]
		st.F[r] = vr.f[reg.FloatOut[r]]
	}
	ar.Commit()
	det.Reset()
	return ExecResult{Outcome: Commit, NextBlock: reg.FinalTarget, OpsExecuted: len(cr.Seq)}
}

// execArith evaluates a register-to-register op on the vreg file,
// mirroring guest.Exec semantics.
func execArith(op *ir.Op, vr *vregFile) {
	i := vr.i
	f := vr.f
	switch op.GOp {
	case guest.Nop:
	case guest.Li:
		i[op.Dst] = op.Imm
	case guest.Mov:
		i[op.Dst] = i[op.Srcs[0]]
	case guest.Add:
		i[op.Dst] = i[op.Srcs[0]] + i[op.Srcs[1]]
	case guest.Sub:
		i[op.Dst] = i[op.Srcs[0]] - i[op.Srcs[1]]
	case guest.Mul:
		i[op.Dst] = i[op.Srcs[0]] * i[op.Srcs[1]]
	case guest.Div:
		if i[op.Srcs[1]] == 0 {
			i[op.Dst] = 0
		} else {
			i[op.Dst] = i[op.Srcs[0]] / i[op.Srcs[1]]
		}
	case guest.And:
		i[op.Dst] = i[op.Srcs[0]] & i[op.Srcs[1]]
	case guest.Or:
		i[op.Dst] = i[op.Srcs[0]] | i[op.Srcs[1]]
	case guest.Xor:
		i[op.Dst] = i[op.Srcs[0]] ^ i[op.Srcs[1]]
	case guest.Shl:
		i[op.Dst] = i[op.Srcs[0]] << (uint64(i[op.Srcs[1]]) & 63)
	case guest.Shr:
		i[op.Dst] = i[op.Srcs[0]] >> (uint64(i[op.Srcs[1]]) & 63)
	case guest.Addi:
		i[op.Dst] = i[op.Srcs[0]] + op.Imm
	case guest.Muli:
		i[op.Dst] = i[op.Srcs[0]] * op.Imm
	case guest.Slt:
		if i[op.Srcs[0]] < i[op.Srcs[1]] {
			i[op.Dst] = 1
		} else {
			i[op.Dst] = 0
		}
	case guest.FLi:
		f[op.Dst] = op.FImm
	case guest.FMov:
		f[op.Dst] = f[op.Srcs[0]]
	case guest.FAdd:
		f[op.Dst] = f[op.Srcs[0]] + f[op.Srcs[1]]
	case guest.FSub:
		f[op.Dst] = f[op.Srcs[0]] - f[op.Srcs[1]]
	case guest.FMul:
		f[op.Dst] = f[op.Srcs[0]] * f[op.Srcs[1]]
	case guest.FDiv:
		f[op.Dst] = f[op.Srcs[0]] / f[op.Srcs[1]]
	case guest.FNeg:
		f[op.Dst] = -f[op.Srcs[0]]
	case guest.FAbs:
		f[op.Dst] = math.Abs(f[op.Srcs[0]])
	case guest.FSqrt:
		f[op.Dst] = math.Sqrt(f[op.Srcs[0]])
	case guest.CvtIF:
		f[op.Dst] = float64(i[op.Srcs[0]])
	case guest.CvtFI:
		i[op.Dst] = int64(f[op.Srcs[0]])
	default:
		panic(fmt.Sprintf("vliw: cannot execute arith op %s", op.GOp))
	}
}

// evalGuard evaluates a guard's branch condition: true means "taken".
func evalGuard(op *ir.Op, vr *vregFile) bool {
	a, b := vr.i[op.Srcs[0]], vr.i[op.Srcs[1]]
	switch op.GOp {
	case guest.Beq:
		return a == b
	case guest.Bne:
		return a != b
	case guest.Blt:
		return a < b
	case guest.Bge:
		return a >= b
	default:
		panic(fmt.Sprintf("vliw: guard with opcode %s", op.GOp))
	}
}
