package vliw_test

import (
	"testing"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/vliw"
	"smarq/internal/xlate"
)

// compileGuest builds a program, interprets it for a profile, forms and
// fully compiles the superblock at seed.
func compileGuest(t *testing.T, seed int, mode sched.HWMode, build func(*guest.Builder)) (*vliw.CompiledRegion, *guest.Program) {
	t.Helper()
	b := guest.NewBuilder()
	build(b)
	prog := b.MustProgram()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(4096))
	_, _ = it.Run(0, 100_000)
	sb, err := region.Form(prog, it.Prof, seed, region.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := xlate.Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	tbl := alias.BuildTable(reg, nil)
	optCfg := opt.Config{LoadElim: true, StoreElim: true, Speculative: mode == sched.HWOrdered}
	if mode == sched.HWALAT {
		optCfg = opt.Config{}
	}
	optRes := opt.Run(reg, tbl, optCfg)
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)
	sc, err := sched.Run(reg, tbl, ds, sched.Config{
		Mode: mode, NumAliasRegs: 64, StoreReorder: true,
		PressureMargin: 4, Machine: vliw.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return vliw.DefaultConfig().Compile(sc.Seq, reg, len(sb.Insts)), prog
}

func TestExecuteCommitMatchesInterpreter(t *testing.T) {
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.Li(1, 64)      // base
		b.Li(2, 128)     // other base
		b.Ld8(3, 1, 0)   // may-alias games below
		b.St8(2, 0, 3)   // store to other array
		b.Ld8(4, 1, 8)   // reorderable load
		b.Addi(5, 4, 10) //
		b.St8(1, 16, 5)  // store
		b.Ld8(6, 2, 0)   // load back (must-alias store above -> elim)
		b.Add(7, 6, 5)   //
		b.St8(1, 24, 7)  //
		b.Halt()
	}
	cr, prog := compileGuest(t, 0, sched.HWOrdered, build)

	// Reference: pure interpretation.
	refSt := &guest.State{}
	refMem := guest.NewMemory(4096)
	refIt := interp.New(prog, refSt, refMem)
	if _, err := refIt.Run(0, 100_000); err != nil {
		t.Fatal(err)
	}

	// Region execution.
	st := &guest.State{}
	mem := guest.NewMemory(4096)
	det := aliashw.NewOrderedQueue(64)
	res := vliw.Execute(cr, st, mem, det)
	if res.Outcome != vliw.Commit {
		t.Fatalf("outcome = %s, want commit", res.Outcome)
	}
	if res.NextBlock != interp.HaltID {
		t.Errorf("next block = %d, want halt", res.NextBlock)
	}
	for r := 0; r < guest.NumRegs; r++ {
		if st.R[r] != refSt.R[r] {
			t.Errorf("r%d = %d, interpreter got %d", r, st.R[r], refSt.R[r])
		}
	}
	for a := uint64(0); a < 4096; a += 8 {
		got, _ := mem.Load(a, 8)
		want, _ := refMem.Load(a, 8)
		if got != want {
			t.Errorf("mem[%d] = %d, interpreter got %d", a, got, want)
		}
	}
}

func TestExecuteGuardFailRollsBack(t *testing.T) {
	// A loop trace compiled with the loop-back guard expected taken; run
	// it with a state that exits immediately.
	build := func(b *guest.Builder) {
		b.NewBlock() // B0
		b.Li(1, 50)
		b.Li(2, 64)
		b.NewBlock() // B1: loop
		b.Ld8(3, 2, 0)
		b.Addi(3, 3, 1)
		b.St8(2, 0, 3)
		b.Addi(1, 1, -1)
		b.Bne(1, 0, 1)
		b.NewBlock()
		b.Halt()
	}
	cr, _ := compileGuest(t, 1, sched.HWOrdered, build)

	st := &guest.State{}
	st.R[1] = 1 // guard bne r1-1 != 0 will fail
	st.R[2] = 64
	mem := guest.NewMemory(4096)
	if err := mem.Store(64, 8, 7); err != nil {
		t.Fatal(err)
	}
	det := aliashw.NewOrderedQueue(64)
	res := vliw.Execute(cr, st, mem, det)
	if res.Outcome != vliw.GuardFail {
		t.Fatalf("outcome = %s, want guard-fail", res.Outcome)
	}
	// Everything rolled back.
	if st.R[1] != 1 || st.R[3] != 0 {
		t.Errorf("state not rolled back: r1=%d r3=%d", st.R[1], st.R[3])
	}
	v, _ := mem.Load(64, 8)
	if v != 7 {
		t.Errorf("memory not rolled back: %d, want 7", v)
	}
}

func TestExecuteAliasExceptionOnRealAlias(t *testing.T) {
	// A load speculatively hoisted above a may-alias store; run with
	// addresses that actually collide.
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.St8(1, 0, 5)  // store [r1]
		b.Ld8(3, 2, 0)  // load [r2] — different roots, may alias
		b.Addi(4, 3, 1) // consumer chain makes hoisting attractive
		b.Addi(4, 4, 1)
		b.St8(1, 8, 4)
		b.Halt()
	}
	cr, _ := compileGuest(t, 0, sched.HWOrdered, build)

	// Confirm the load was hoisted; otherwise the test is vacuous.
	stIdx, ldIdx := -1, -1
	for i, op := range cr.Seq {
		if op.Kind == ir.Store && stIdx == -1 {
			stIdx = i
		}
		if op.Kind == ir.Load {
			ldIdx = i
		}
	}
	if ldIdx > stIdx {
		t.Fatal("load was not hoisted; test setup broken")
	}

	st := &guest.State{}
	st.R[1] = 64
	st.R[2] = 64 // same address: genuine alias
	st.R[5] = 99
	mem := guest.NewMemory(4096)
	det := aliashw.NewOrderedQueue(64)
	res := vliw.Execute(cr, st, mem, det)
	if res.Outcome != vliw.AliasException {
		t.Fatalf("outcome = %s, want alias-exception", res.Outcome)
	}
	if res.Conflict == nil {
		t.Fatal("no conflict reported")
	}
	// Rolled back: no stores landed.
	v, _ := mem.Load(64, 8)
	if v != 0 {
		t.Errorf("memory modified despite exception: %d", v)
	}

	// With disjoint addresses the same region commits silently.
	st2 := &guest.State{}
	st2.R[1] = 64
	st2.R[2] = 256
	st2.R[5] = 99
	mem2 := guest.NewMemory(4096)
	res2 := vliw.Execute(cr, st2, mem2, det)
	if res2.Outcome != vliw.Commit {
		t.Fatalf("disjoint run outcome = %s, want commit", res2.Outcome)
	}
	v, _ = mem2.Load(64, 8)
	if v != 99 {
		t.Errorf("store lost: mem[64]=%d, want 99", v)
	}
}

func TestExecuteFaultRollsBack(t *testing.T) {
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.St8(1, 0, 5)
		b.Ld8(3, 2, 0)
		b.Halt()
	}
	cr, _ := compileGuest(t, 0, sched.HWOrdered, build)
	st := &guest.State{}
	st.R[1] = 64
	st.R[2] = 1 << 40 // way out of range
	mem := guest.NewMemory(4096)
	det := aliashw.NewOrderedQueue(64)
	res := vliw.Execute(cr, st, mem, det)
	if res.Outcome != vliw.Fault {
		t.Fatalf("outcome = %s, want fault", res.Outcome)
	}
	v, _ := mem.Load(64, 8)
	if v != 0 {
		t.Error("store survived a faulting region")
	}
}

func TestCycleCountInOrderStalls(t *testing.T) {
	c := vliw.DefaultConfig()
	// Load (lat 3) immediately consumed: total = load at 0, add stalls to
	// cycle 3, result cycle count 4.
	ops := []*ir.Op{
		{ID: 0, Kind: ir.Load, GOp: guest.Ld8, Dst: 64, Srcs: []ir.VReg{1}, SrcFloat: []bool{false},
			Mem: &ir.MemInfo{Base: 1, Size: 8}, AROffset: -1},
		{ID: 1, Kind: ir.Arith, GOp: guest.Addi, Dst: 65, Srcs: []ir.VReg{64}, SrcFloat: []bool{false}, AROffset: -1},
	}
	if got := c.CycleCount(ops, 70); got != 4 {
		t.Errorf("stalled sequence cycles = %d, want 4", got)
	}
	// Independent op between: still 4 (fills one stall cycle).
	ops2 := []*ir.Op{
		ops[0],
		{ID: 2, Kind: ir.Arith, GOp: guest.Li, Dst: 66, AROffset: -1},
		ops[1],
	}
	if got := c.CycleCount(ops2, 70); got != 4 {
		t.Errorf("filled sequence cycles = %d, want 4", got)
	}
}

func TestCycleCountResourceLimits(t *testing.T) {
	c := vliw.DefaultConfig() // 4-wide, 2 mem ports
	var seq []*ir.Op
	for i := 0; i < 4; i++ {
		seq = append(seq, &ir.Op{ID: i, Kind: ir.Load, GOp: guest.Ld8,
			Dst: ir.VReg(64 + i), Srcs: []ir.VReg{1}, SrcFloat: []bool{false},
			Mem: &ir.MemInfo{Base: 1, Size: 8}, AROffset: -1})
	}
	// 4 independent loads, 2 ports: 2 cycles of issue -> count 2.
	if got := c.CycleCount(seq, 70); got != 2 {
		t.Errorf("4 loads on 2 ports = %d cycles, want 2", got)
	}
	var alus []*ir.Op
	for i := 0; i < 8; i++ {
		alus = append(alus, &ir.Op{ID: i, Kind: ir.Arith, GOp: guest.Li,
			Dst: ir.VReg(64 + i), AROffset: -1})
	}
	if got := c.CycleCount(alus, 80); got != 2 {
		t.Errorf("8 ALU ops on width 4 = %d cycles, want 2", got)
	}
}

func TestLatencyTable(t *testing.T) {
	c := vliw.DefaultConfig()
	cases := []struct {
		op   *ir.Op
		want int
	}{
		{&ir.Op{Kind: ir.Load, GOp: guest.Ld8}, c.MemLat},
		{&ir.Op{Kind: ir.Store, GOp: guest.St8}, 1},
		{&ir.Op{Kind: ir.Arith, GOp: guest.Add}, c.IntLat},
		{&ir.Op{Kind: ir.Arith, GOp: guest.FMul}, c.FPLat},
		{&ir.Op{Kind: ir.Arith, GOp: guest.FDiv}, c.FDivLat},
		{&ir.Op{Kind: ir.Arith, GOp: guest.FSqrt}, c.FSqrtLat},
		{&ir.Op{Kind: ir.Guard, GOp: guest.Bne}, 1},
		{&ir.Op{Kind: ir.Rotate}, 1},
		{&ir.Op{Kind: ir.AMov}, 1},
		{&ir.Op{Kind: ir.Copy}, 1},
	}
	for _, cse := range cases {
		if got := c.Latency(cse.op); got != cse.want {
			t.Errorf("latency(%v/%s) = %d, want %d", cse.op.Kind, cse.op.GOp, got, cse.want)
		}
	}
	if c.Class(&ir.Op{Kind: ir.Load}) != vliw.MemPort || c.Class(&ir.Op{Kind: ir.Arith}) != vliw.ALUPort {
		t.Error("port classes wrong")
	}
}

// TestExecuteBitmaskDetector runs a compiled region against the bit-mask
// hardware end to end: silent on disjoint addresses, an exception on a
// genuine alias.
func TestExecuteBitmaskDetector(t *testing.T) {
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.St8(1, 0, 5)
		b.Ld8(3, 2, 0)
		b.Addi(4, 3, 1)
		b.Addi(4, 4, 1)
		b.St8(1, 8, 4)
		b.Halt()
	}
	// Compile for the bitmask hardware.
	bm := func() *vliw.CompiledRegion {
		bb := guest.NewBuilder()
		build(bb)
		prog := bb.MustProgram()
		it := interp.New(prog, &guest.State{}, guest.NewMemory(4096))
		_, _ = it.Run(0, 100_000)
		sb, err := region.Form(prog, it.Prof, 0, region.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		reg, err := xlate.Translate(sb)
		if err != nil {
			t.Fatal(err)
		}
		tbl := alias.BuildTable(reg, nil)
		ds := deps.Compute(reg, tbl)
		sc, err := sched.Run(reg, tbl, ds, sched.Config{
			Mode: sched.HWBitmask, NumAliasRegs: 15, StoreReorder: true,
			PressureMargin: 2, Machine: vliw.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return vliw.DefaultConfig().Compile(sc.Seq, reg, len(sb.Insts))
	}()

	det := aliashw.NewBitmask(15)
	st := &guest.State{}
	st.R[1], st.R[2], st.R[5] = 64, 256, 9
	mem := guest.NewMemory(4096)
	if res := vliw.Execute(bm, st, mem, det); res.Outcome != vliw.Commit {
		t.Fatalf("disjoint run = %s, want commit", res.Outcome)
	}

	st2 := &guest.State{}
	st2.R[1], st2.R[2], st2.R[5] = 64, 64, 9 // genuine alias
	res := vliw.Execute(bm, st2, guest.NewMemory(4096), det)
	if res.Outcome != vliw.AliasException {
		t.Fatalf("aliasing run = %s, want alias-exception", res.Outcome)
	}
	if res.Conflict == nil || res.Conflict.Origin == res.Conflict.Checker {
		t.Errorf("bad conflict report: %+v", res.Conflict)
	}
}

// TestExecuteCoversAllOpcodes compiles a straight-line program exercising
// every executable guest opcode and compares region execution against the
// interpreter — per-opcode differential coverage of execArith/evalGuard.
func TestExecuteCoversAllOpcodes(t *testing.T) {
	build := func(b *guest.Builder) {
		b.NewBlock()
		b.Li(1, 7)
		b.Li(2, 3)
		b.Li(3, 1024)
		b.Mov(4, 1)
		b.Add(5, 1, 2)
		b.Sub(6, 1, 2)
		b.Mul(7, 1, 2)
		b.Div(8, 1, 2)
		b.Div(9, 1, 0) // divide by zero path
		b.And(10, 1, 2)
		b.Or(11, 1, 2)
		b.Xor(12, 1, 2)
		b.Shl(13, 1, 2)
		b.Shr(14, 1, 2)
		b.Addi(15, 1, -20)
		b.Muli(16, 1, 5)
		b.Slt(17, 2, 1)
		b.Slt(18, 1, 2)
		b.FLi(1, 2.5)
		b.FLi(2, -1.25)
		b.FMov(3, 1)
		b.FAdd(4, 1, 2)
		b.FSub(5, 1, 2)
		b.FMul(6, 1, 2)
		b.FDiv(7, 1, 2)
		b.FNeg(8, 1)
		b.FAbs(9, 2)
		b.FSqrt(10, 1)
		b.CvtIF(11, 5)
		b.CvtFI(19, 7)
		b.St1(3, 0, 1)
		b.St2(3, 2, 1)
		b.St4(3, 4, 1)
		b.St8(3, 8, 1)
		b.FSt8(3, 16, 4)
		b.Ld1(20, 3, 0)
		b.Ld2(21, 3, 2)
		b.Ld4(22, 3, 4)
		b.Ld8(23, 3, 8)
		b.FLd8(12, 3, 16)
		b.Halt()
	}
	cr, prog := compileGuest(t, 0, sched.HWOrdered, build)
	ref := interp.New(prog, &guest.State{}, guest.NewMemory(4096))
	if _, err := ref.Run(0, 100_000); err != nil {
		t.Fatal(err)
	}
	st := &guest.State{}
	mem := guest.NewMemory(4096)
	res := vliw.Execute(cr, st, mem, aliashw.NewOrderedQueue(64))
	if res.Outcome != vliw.Commit {
		t.Fatalf("outcome = %s", res.Outcome)
	}
	for r := 0; r < guest.NumRegs; r++ {
		if st.R[r] != ref.St.R[r] {
			t.Errorf("r%d = %d, interpreter got %d", r, st.R[r], ref.St.R[r])
		}
		if st.F[r] != ref.St.F[r] {
			t.Errorf("f%d = %v, interpreter got %v", r, st.F[r], ref.St.F[r])
		}
	}
}

// TestExecuteAllGuardKinds covers every branch opcode as a guard, both
// directions.
func TestExecuteAllGuardKinds(t *testing.T) {
	for _, op := range []guest.Opcode{guest.Beq, guest.Bne, guest.Blt, guest.Bge} {
		for _, taken := range []bool{true, false} {
			bb := guest.NewBuilder()
			bb.NewBlock() // B0: sets up a loop so the branch becomes a guard
			bb.Li(1, 4)
			bb.Li(2, 2)
			body := bb.NewBlock()
			bb.Addi(3, 3, 1)
			bb.Emit(guest.Inst{Op: op, Rs1: 1, Rs2: 2, Target: body})
			bb.NewBlock()
			bb.Halt()
			prog := bb.MustProgram()
			st := &guest.State{}
			mem := guest.NewMemory(64)
			it := interp.New(prog, st, mem)
			// Give the loop block enough heat to be formed as a region.
			it.Prof.BlockCounts[body] = 100
			it.Prof.AddEdges(body, body, 90)
			it.Prof.AddEdges(body, body+1, 10)
			sb, err := region.Form(prog, it.Prof, body, region.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			reg, err := xlate.Translate(sb)
			if err != nil {
				t.Fatal(err)
			}
			tbl := alias.BuildTable(reg, nil)
			ds := deps.Compute(reg, tbl)
			sc, err := sched.Run(reg, tbl, ds, sched.Config{
				Mode: sched.HWOrdered, NumAliasRegs: 64, StoreReorder: true,
				PressureMargin: 4, Machine: vliw.DefaultConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}
			cr := vliw.DefaultConfig().Compile(sc.Seq, reg, len(sb.Insts))

			run := &guest.State{}
			if taken {
				// Choose registers so the branch goes the on-trace way.
				run.R[1], run.R[2] = guardRegs(op, true)
			} else {
				run.R[1], run.R[2] = guardRegs(op, false)
			}
			res := vliw.Execute(cr, run, guest.NewMemory(64), aliashw.NewOrderedQueue(8))
			wantCommit := taken // the trace expects the loop-back taken
			if (res.Outcome == vliw.Commit) != wantCommit {
				t.Errorf("%s taken=%v: outcome %s", op, taken, res.Outcome)
			}
		}
	}
}

// guardRegs picks r1, r2 values making op's condition true or false.
func guardRegs(op guest.Opcode, cond bool) (int64, int64) {
	switch op {
	case guest.Beq:
		if cond {
			return 5, 5
		}
		return 5, 6
	case guest.Bne:
		if cond {
			return 5, 6
		}
		return 5, 5
	case guest.Blt:
		if cond {
			return 1, 2
		}
		return 2, 1
	default: // Bge
		if cond {
			return 2, 1
		}
		return 1, 2
	}
}
