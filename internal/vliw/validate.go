// Install-time result validation: a content checksum over the frozen
// compile result plus structural invariant checks, so a corrupted
// ("poisoned") compile — a host bug, a bad worker, an injected fault —
// is rejected at the install point instead of dispatched. The checksum
// is stamped on the worker right after the pipeline finishes and
// recomputed on the simulation thread at install; the structural check
// catches corruption that happened before the stamp (a consistent hash
// over broken contents proves nothing).
package vliw

import (
	"fmt"
	"math"

	"smarq/internal/guest"
	"smarq/internal/ir"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvInt(h uint64, v int64) uint64 { return fnvWord(h, uint64(v)) }

func fnvBool(h uint64, b bool) uint64 {
	if b {
		return fnvWord(h, 1)
	}
	return fnvWord(h, 0)
}

// Checksum returns the FNV-1a content hash of the compiled region: every
// field of every scheduled op (including the alias-register annotations
// the executor trusts), the region's shape and live-out maps, and the
// precomputed cycle cost. Any single-field corruption of the frozen
// slabs changes the hash.
func (cr *CompiledRegion) Checksum() uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, cr.Cycles)
	h = fnvInt(h, int64(cr.GuestInsts))
	h = fnvInt(h, int64(len(cr.Seq)))
	for _, o := range cr.Seq {
		h = fnvInt(h, int64(o.ID))
		h = fnvInt(h, int64(o.Kind))
		h = fnvInt(h, int64(o.GOp))
		h = fnvInt(h, int64(o.Dst))
		h = fnvBool(h, o.DstFloat)
		h = fnvInt(h, int64(len(o.Srcs)))
		for i, s := range o.Srcs {
			h = fnvInt(h, int64(s))
			h = fnvBool(h, o.SrcFloat[i])
		}
		h = fnvInt(h, o.Imm)
		h = fnvWord(h, math.Float64bits(o.FImm))
		if o.Mem != nil {
			h = fnvInt(h, int64(o.Mem.Base))
			h = fnvInt(h, o.Mem.Off)
			h = fnvInt(h, int64(o.Mem.Size))
			h = fnvInt(h, int64(o.Mem.Root))
			h = fnvInt(h, o.Mem.RootOff)
			h = fnvBool(h, o.Mem.Abs)
		}
		h = fnvBool(h, o.OnTraceTaken)
		h = fnvInt(h, int64(o.OffTrace))
		h = fnvInt(h, int64(o.AROffset))
		h = fnvWord(h, uint64(o.ARMask))
		h = fnvBool(h, o.P)
		h = fnvBool(h, o.C)
		h = fnvInt(h, int64(o.Amount))
		h = fnvInt(h, int64(o.SrcOff))
		h = fnvInt(h, int64(o.DstOff))
	}
	reg := cr.Region
	h = fnvInt(h, int64(reg.NumVRegs))
	h = fnvInt(h, int64(reg.Entry))
	h = fnvInt(h, int64(reg.FinalTarget))
	h = fnvInt(h, int64(len(reg.Ops)))
	for r := 0; r < guest.NumRegs; r++ {
		h = fnvInt(h, int64(reg.IntOut[r]))
		h = fnvInt(h, int64(reg.FloatOut[r]))
	}
	return h
}

// Validate checks the structural invariants a dispatchable compile result
// must satisfy: the schedule is non-empty and consistent with its
// pre-decoded form, op counts bound each other (a schedule only ever adds
// allocator ops to the region's), every vreg the live-out maps and the
// scheduled ops name is in range, and the cycle cost is positive. It is
// the second validation layer behind Checksum — corruption that predates
// the checksum stamp must fail here.
func (cr *CompiledRegion) Validate() error {
	reg := cr.Region
	if reg == nil {
		return fmt.Errorf("vliw: compiled region has no IR region")
	}
	if len(cr.Seq) == 0 {
		return fmt.Errorf("vliw: empty schedule")
	}
	if len(cr.dec) != len(cr.Seq) {
		return fmt.Errorf("vliw: %d decoded ops for %d scheduled", len(cr.dec), len(cr.Seq))
	}
	if len(cr.Seq) < len(reg.Ops) {
		// Scheduling never deletes ops; eliminations rewrite them in
		// place. Fewer scheduled ops than region ops means a truncated
		// slab.
		return fmt.Errorf("vliw: schedule has %d ops, region has %d", len(cr.Seq), len(reg.Ops))
	}
	if cr.Cycles <= 0 {
		return fmt.Errorf("vliw: nonpositive cycle cost %d", cr.Cycles)
	}
	if cr.GuestInsts <= 0 {
		return fmt.Errorf("vliw: nonpositive guest instruction count %d", cr.GuestInsts)
	}
	if err := reg.Validate(); err != nil {
		return fmt.Errorf("vliw: region invariants: %w", err)
	}
	for i, o := range cr.Seq {
		if o == nil {
			return fmt.Errorf("vliw: nil op at schedule slot %d", i)
		}
		if o.Dst != ir.NoVReg && (o.Dst < 0 || int(o.Dst) >= reg.NumVRegs) {
			return fmt.Errorf("vliw: schedule slot %d: dst v%d out of range [0,%d)", i, o.Dst, reg.NumVRegs)
		}
		for _, s := range o.Srcs {
			if s != ir.NoVReg && (s < 0 || int(s) >= reg.NumVRegs) {
				return fmt.Errorf("vliw: schedule slot %d: src v%d out of range [0,%d)", i, s, reg.NumVRegs)
			}
		}
		if o.IsMem() && o.Mem == nil {
			return fmt.Errorf("vliw: schedule slot %d: memory op without MemInfo", i)
		}
	}
	for r := 0; r < guest.NumRegs; r++ {
		if v := reg.IntOut[r]; v < 0 || int(v) >= reg.NumVRegs {
			return fmt.Errorf("vliw: live-out int r%d maps to v%d out of range", r, v)
		}
		if v := reg.FloatOut[r]; v < 0 || int(v) >= reg.NumVRegs {
			return fmt.Errorf("vliw: live-out float f%d maps to v%d out of range", r, v)
		}
	}
	return nil
}
