package workload

import "smarq/internal/guest"

// Galgel is a Galerkin-method fluid benchmark: column-major sweeps over a
// small dense matrix with strided computed addresses, accumulating into a
// coefficient vector. The row store crosses the next column's strided
// loads.
func Galgel() Benchmark { return galgelScaled(1) }

// galgelScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func galgelScaled(scale int64) Benchmark {
	const m = 24 // m x m matrix
	sweeps := 60 * scale
	return Benchmark{
		Name:        "galgel",
		Description: "Galerkin coefficients, strided dense sweeps",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // A: m*m matrix
			b.Li(2, arrB) // B: vector
			b.Li(3, arrC) // C: coefficients
			b.Li(6, 0)
			b.Li(7, m*m)
			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 37)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock()
			b.Li(6, 0)
			b.Li(7, m)
			fill2 := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 5)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.FLi(0, 0)
			idx8(b, 10, 3, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill2)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 0) // column j
			b.Li(7, m)

			body := b.NewBlock()     // two columns per trip: column u+1's
			for u := 0; u < 2; u++ { // strided loads cross column u's store
				b.FLi(14, 0)
				for i := int64(0); i < 4; i++ { // 4-row tile of the column
					b.Muli(10, 6, 8)
					b.Addi(10, 10, i*m*8)
					b.Add(10, 1, 10) // &A[i*m+j] — computed, stride m
					b.FLd8(0, 10, 0)
					idx8(b, 12, 2, 6, 11)
					b.FLd8(1, 12, 0) // B[j]
					b.FMul(2, 0, 1)
					b.FAdd(14, 14, 2)
				}
				idx8(b, 12, 3, 6, 11)
				b.FLd8(3, 12, 0) // C[j] read-modify-write
				b.FAdd(3, 3, 14)
				b.FSt8(12, 0, 3) // C[j]
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 3, m, 0)
			return b.MustProgram()
		},
	}
}

// Lucas is the Lucas-Lehmer/FFT benchmark: in-place butterfly pairs — two
// loads and two stores at computed positions i and i+half per butterfly.
// The two stores of one butterfly cross the loads of the next; half the
// accesses are an opaque distance apart, so everything may alias.
func Lucas() Benchmark { return lucasScaled(1) }

// lucasScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func lucasScaled(scale int64) Benchmark {
	const n = 128
	sweeps := 70 * scale
	return Benchmark{
		Name:        "lucas",
		Description: "FFT butterflies, in-place paired updates",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // X
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(20, 0.5)
			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 11)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			b.Li(15, n/2) // half, set outside the region: opaque inside
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, n/2)

			body := b.NewBlock()     // two butterflies per trip: the second
			for u := 0; u < 2; u++ { // one's loads cross the first's stores
				idx8(b, 10, 1, 6, 11) // &X[i]
				b.Add(12, 6, 15)      // i + half
				idx8(b, 13, 1, 12, 11)
				b.FLd8(0, 10, 0) // a = X[i]
				b.FLd8(1, 13, 0) // c = X[i+half]
				b.FAdd(2, 0, 1)
				b.FSub(3, 0, 1)
				b.FMul(2, 2, 20)
				b.FMul(3, 3, 20)
				b.FSt8(10, 0, 2) // X[i]
				b.FSt8(13, 0, 3) // X[i+half]
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 1, n, 0)
			return b.MustProgram()
		},
	}
}

// Fma3d is the finite-element crash benchmark: per element, gather two
// node positions through an index table, compute a spring force, and
// scatter-add it back into both nodes — a lighter cousin of ammp's
// indirect force accumulation with genuine occasional sharing (adjacent
// elements share a node).
func Fma3d() Benchmark { return fma3dScaled(1) }

// fma3dScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func fma3dScaled(scale int64) Benchmark {
	const nodes, elems = 96, 95
	sweeps := 50 * scale
	return Benchmark{
		Name:        "fma3d",
		Description: "finite elements, node gather/scatter",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // POS
			b.Li(2, arrB) // FRC
			b.Li(3, arrC) // N1 index table
			b.Li(4, arrD) // N2 index table
			b.Li(6, 0)
			b.Li(7, nodes)
			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 13)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.FLi(0, 0)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock() // element connectivity: element e joins nodes e and e+1
			b.Li(6, 0)
			b.Li(7, elems)
			fillE := b.NewBlock()
			idx8(b, 10, 3, 6, 11)
			b.St8(10, 0, 6)
			b.Addi(12, 6, 1)
			idx8(b, 10, 4, 6, 11)
			b.St8(10, 0, 12)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fillE)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			b.FLi(20, 0.01)
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, elems)

			body := b.NewBlock() // one element: gather, force, scatter-add
			idx8(b, 10, 3, 6, 11)
			b.Ld8(13, 10, 0) // n1
			idx8(b, 10, 4, 6, 11)
			b.Ld8(14, 10, 0)       // n2 (== next element's n1: real sharing)
			idx8(b, 16, 1, 13, 11) // &POS[n1]
			b.FLd8(0, 16, 0)
			idx8(b, 17, 1, 14, 11) // &POS[n2]
			b.FLd8(1, 17, 0)
			b.FSub(2, 1, 0) // dx
			b.FMul(3, 2, 20)
			idx8(b, 18, 2, 13, 11) // &FRC[n1] RMW
			b.FLd8(4, 18, 0)
			b.FAdd(4, 4, 3)
			b.FSt8(18, 0, 4)
			idx8(b, 19, 2, 14, 11) // &FRC[n2] RMW — truly aliases the next
			b.FLd8(5, 19, 0)       // element's FRC[n1] access
			b.FSub(5, 5, 3)
			b.FSt8(19, 0, 5)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 2, nodes, 0)
			return b.MustProgram()
		},
	}
}

// Sixtrack is the particle-tracking benchmark: each particle's six-word
// state is loaded, pushed through a deep floating-point map, and stored
// back. Particles are independent, so hoisting the next particle's loads
// above this particle's stores is pure profit — but the state pointers
// are opaque, so only alias hardware permits it.
func Sixtrack() Benchmark { return sixtrackScaled(1) }

// sixtrackScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func sixtrackScaled(scale int64) Benchmark {
	const particles = 48
	turns := 90 * scale
	return Benchmark{
		Name:        "sixtrack",
		Description: "particle tracking, six-word state maps",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // STATE: particles*6 float64
			b.Li(6, 0)
			b.Li(7, particles*6)
			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 17)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, turns)
			b.FLi(20, 0.999)
			b.FLi(21, 0.002)
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, particles)

			body := b.NewBlock()     // two particles per trip, with opaque
			for u := 0; u < 2; u++ { // computed addresses: particle u+1's
				b.Muli(10, 6, 48) //     loads cross particle u's stores
				b.Add(14, 1, 10)  // &STATE[i*6]
				for k := int64(0); k < 6; k++ {
					b.FLd8(guest.Reg(k), 14, k*8)
				}
				// Symplectic-ish map: rotate position/momentum pairs.
				for p := 0; p < 3; p++ {
					x := guest.Reg(2 * p)
					v := guest.Reg(2*p + 1)
					b.FMul(10, x, 20)
					b.FMul(11, v, 21)
					b.FSub(10, 10, 11)
					b.FMul(12, v, 20)
					b.FMul(13, x, 21)
					b.FAdd(12, 12, 13)
					b.FMov(x, 10)
					b.FMov(v, 12)
				}
				for k := int64(0); k < 6; k++ {
					b.FSt8(14, k*8, guest.Reg(k))
				}
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 1, particles*6, 0)
			return b.MustProgram()
		},
	}
}
