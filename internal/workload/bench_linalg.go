package workload

import "smarq/internal/guest"

// Wupwise is a dense 4x4 matrix-vector kernel with a feedback vector: each
// result store is followed (in program order) by the next row's matrix and
// vector loads from different base registers — textbook Figure 2 material.
func Wupwise() Benchmark { return wupwiseScaled(1) }

// wupwiseScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func wupwiseScaled(scale int64) Benchmark {
	const itersBase = 2500
	iters := itersBase * scale
	return Benchmark{
		Name:        "wupwise",
		Description: "dense matvec with feedback vector",
		MemSize:     defaultMem,
		MaxInsts:    5_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // M: 16 entries
			b.Li(2, arrB) // V: 4
			b.Li(3, arrC) // R: 4
			b.Li(6, 0)
			b.Li(7, 16)
			b.FLi(20, 0.99)

			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 1)
			b.FAdd(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock()
			b.Li(6, 0)
			b.Li(7, 4)
			fill2 := b.NewBlock()
			b.FLi(0, 0.5)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill2)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, iters)
			body := b.NewBlock()
			for r := int64(0); r < 4; r++ {
				// Row r: load 4 matrix entries and 4 vector entries (the
				// vector loads cross the previous row's result store).
				b.FLd8(0, 1, r*32+0)
				b.FLd8(1, 1, r*32+8)
				b.FLd8(2, 1, r*32+16)
				b.FLd8(3, 1, r*32+24)
				b.FLd8(4, 2, 0)
				b.FLd8(5, 2, 8)
				b.FLd8(6, 2, 16)
				b.FLd8(7, 2, 24)
				b.FMul(8, 0, 4)
				b.FMul(9, 1, 5)
				b.FMul(10, 2, 6)
				b.FMul(11, 3, 7)
				b.FAdd(8, 8, 9)
				b.FAdd(10, 10, 11)
				b.FAdd(8, 8, 10)
				b.FSt8(3, r*8, 8) // R[r]
			}
			// Feedback: V = R * 0.99, normalizing so values stay finite.
			for j := int64(0); j < 4; j++ {
				b.FLd8(12, 3, j*8)
				b.FMul(12, 12, 20)
				b.FLi(13, 64.0)
				b.FDiv(12, 12, 13)
				b.FSt8(2, j*8, 12)
			}
			b.Addi(8, 8, 1)
			b.Blt(8, 9, body)

			checksumF(b, 3, 4, 0)
			return b.MustProgram()
		},
	}
}

// Facerec is a sliding-window correlation: eight image/template load pairs
// feed one response store per position. Arrays are disjoint at runtime but
// indistinguishable to the binary-level analysis, so this is the cleanest
// speculation win in the suite.
func Facerec() Benchmark { return facerecScaled(1) }

// facerecScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func facerecScaled(scale int64) Benchmark {
	const n, positions = 256, 200
	passes := 30 * scale
	return Benchmark{
		Name:        "facerec",
		Description: "sliding-window correlation",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // IMG
			b.Li(2, arrB) // TPL (8 entries)
			b.Li(3, arrC) // R
			b.Li(6, 0)
			b.Li(7, n)

			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 3)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock()
			b.Li(6, 0)
			b.Li(7, 8)
			fill2 := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 10)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill2)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, passes)
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, positions)

			body := b.NewBlock()     // two positions per trip: position u+1's
			for u := 0; u < 2; u++ { // loads cross position u's R store
				idx8(b, 12, 1, 6, 13) // &IMG[p]
				b.FLi(14, 0)
				for k := int64(0); k < 8; k++ {
					b.FLd8(0, 12, k*8) // IMG[p+k]
					b.FLd8(1, 2, k*8)  // TPL[k]
					b.FMul(2, 0, 1)
					b.FAdd(14, 14, 2)
				}
				idx8(b, 12, 3, 6, 13)
				b.FSt8(12, 0, 14) // R[p]
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 3, positions, 0)
			return b.MustProgram()
		},
	}
}

// Apsi runs phases through a pointer descriptor table: the hot loop's
// array bases are themselves loaded from memory, the fully unanalyzable
// case the paper's §7 discussion highlights.
func Apsi() Benchmark { return apsiScaled(1) }

// apsiScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func apsiScaled(scale int64) Benchmark {
	const n = 128
	sweeps := 45 * scale
	return Benchmark{
		Name:        "apsi",
		Description: "pointer-table phases",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrH) // PT: pointer table
			b.Li(10, arrA)
			b.St8(1, 0, 10)
			b.Li(10, arrB)
			b.St8(1, 8, 10)
			b.Li(10, arrC)
			b.St8(1, 16, 10)
			b.Li(2, arrA)
			b.Li(6, 0)
			b.Li(7, n)

			fill := b.NewBlock() // seed all three arrays
			b.CvtIF(0, 6)
			b.FLi(1, 7)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.FSt8(10, arrB-arrA, 0)
			b.FSt8(10, arrC-arrA, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			// Load the phase pointers (roots known only at runtime).
			b.Ld8(2, 1, 0)  // src1
			b.Ld8(3, 1, 8)  // src2
			b.Ld8(4, 1, 16) // dst
			b.Li(6, 0)
			b.Li(7, n)

			body := b.NewBlock()
			for k := 0; k < 2; k++ {
				idx8(b, 10, 2, 6, 11)
				b.FLd8(0, 10, 0)
				idx8(b, 10, 3, 6, 11)
				b.FLd8(1, 10, 0)
				b.FMul(2, 0, 1)
				b.FAdd(2, 2, 0)
				idx8(b, 10, 4, 6, 11)
				b.FSt8(10, 0, 2) // dst[i]; next trip's loads cross it
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock() // rotate the pointer table for the next phase
			b.Ld8(10, 1, 0)
			b.Ld8(11, 1, 8)
			b.Ld8(12, 1, 16)
			b.St8(1, 0, 11)
			b.St8(1, 8, 12)
			b.St8(1, 16, 10)
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 2, n, 0)
			return b.MustProgram()
		},
	}
}
