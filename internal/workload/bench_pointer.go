package workload

import "smarq/internal/guest"

// Mesa is the store-reordering benchmark (Figure 16: ~13%): a span fill
// writes one slow depth value (behind a floating-point divide) followed by
// eight ready framebuffer stores. Without store reordering the eight
// stores queue behind the slow one on the memory ports; with it they
// drain early.
func Mesa() Benchmark { return mesaScaled(1) }

// mesaScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func mesaScaled(scale int64) Benchmark {
	const rowLen = 512
	rows := 60 * scale
	return Benchmark{
		Name:        "mesa",
		Description: "span rasterization, store-heavy",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(3, arrC) // TEX: 512 entries
			b.Li(6, 0)
			b.Li(7, 512)
			fill := b.NewBlock()
			b.Muli(10, 6, 37)
			b.Addi(10, 10, 11)
			idx8(b, 12, 3, 6, 11)
			b.St8(12, 0, 10)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, rows)
			b.FLi(20, 1.0)
			b.FLi(21, 3.0)
			outer := b.NewBlock() // per-row pointers: set outside the hot
			b.Li(1, arrA)         // region, so their roots are opaque inside
			b.Li(2, arrB)
			b.Li(3, arrC)
			b.Li(6, 0)
			b.Li(7, rowLen)

			body := b.NewBlock() // 8 pixels per trip, pointer-bumped
			// Slow depth store first: its value sits behind an FP divide,
			// and every framebuffer store may-alias it. With store
			// reordering the eight pixel stores drain early; without it
			// they queue behind the divide (the Figure 16 effect).
			b.CvtIF(0, 6)
			b.FAdd(0, 0, 20)
			b.FDiv(1, 21, 0)
			b.CvtFI(13, 1)
			b.St8(2, 0, 13) // Z[i/8] — program-first, value late
			for k := int64(0); k < 8; k++ {
				b.Ld8(17, 3, k*8) // texel
				b.Muli(17, 17, 3)
				b.Addi(17, 17, 7)
				b.St8(1, k*8, 17) // FB pixel
			}
			b.Addi(1, 1, 64)
			b.Addi(2, 2, 8)
			b.Addi(3, 3, 64)
			b.Addi(6, 6, 8)
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			b.NewBlock()
			b.Li(1, arrA) // rewind the row pointer for the checksum
			checksumI(b, 1, 64)
			return b.MustProgram()
		},
	}
}

// Art is a neural-net gather with weight update: indirect weight loads
// (roots loaded from an index table) cross the previous element's weight-
// update store. The index walk is collision-free, so speculation always
// wins.
func Art() Benchmark { return artScaled(1) }

// artScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func artScaled(scale int64) Benchmark {
	const n = 128
	sweeps := 60 * scale
	return Benchmark{
		Name:        "art",
		Description: "neural-net gather with weight updates",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // W
			b.Li(2, arrB) // X
			b.Li(3, arrC) // IX
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(20, 0.999)

			fill := b.NewBlock() // IX[j] = (j*11+5) % n; W, X seeded
			b.Muli(10, 6, 11)
			b.Addi(10, 10, 5)
			b.Li(11, n)
			b.Div(12, 10, 11)
			b.Mul(12, 12, 11)
			b.Sub(10, 10, 12)
			idx8(b, 12, 3, 6, 11)
			b.St8(12, 0, 10)
			b.CvtIF(0, 6)
			b.FLi(1, 100)
			b.FDiv(0, 0, 1)
			idx8(b, 12, 1, 6, 11)
			b.FSt8(12, 0, 0)
			idx8(b, 12, 2, 6, 11)
			b.FSt8(12, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(15, 0)

			body := b.NewBlock()
			for k := 0; k < 2; k++ {
				idx8(b, 10, 3, 6, 11)
				b.Ld8(13, 10, 0)       // idx = IX[j]
				idx8(b, 14, 1, 13, 11) // &W[idx], loaded root
				b.FLd8(0, 14, 0)
				idx8(b, 10, 2, 6, 11)
				b.FLd8(1, 10, 0) // X[j]
				b.FMul(2, 0, 1)
				b.FAdd(15, 15, 2)
				b.FMul(3, 0, 20)
				b.FSt8(14, 0, 3) // W[idx] updated; next j's loads cross it
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 1, n, 0)
			return b.MustProgram()
		},
	}
}

// Equake is a sparse kernel whose column indices occasionally equal the
// destination row: the hoisted source loads then genuinely alias the
// row store, so speculation truly fails sometimes — exercising rollback,
// blacklisting and conservative re-optimization.
func Equake() Benchmark { return equakeScaled(1) }

// equakeScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func equakeScaled(scale int64) Benchmark {
	const n = 96
	sweeps := 60 * scale
	return Benchmark{
		Name:        "equake",
		Description: "sparse matvec with genuine occasional aliasing",
		MemSize:     defaultMem,
		MaxInsts:    8_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // A (values)
			b.Li(2, arrB) // X (vector, also the destination!)
			b.Li(3, arrC) // COL
			b.Li(6, 0)
			b.Li(7, n*4)

			fill := b.NewBlock() // COL[m] = (m*17 + m*m*3) % n — collides
			b.Muli(10, 6, 17)
			b.Mul(12, 6, 6)
			b.Muli(12, 12, 3)
			b.Add(10, 10, 12)
			b.Li(11, n)
			b.Div(12, 10, 11)
			b.Mul(12, 12, 11)
			b.Sub(10, 10, 12)
			idx8(b, 12, 3, 6, 11)
			b.St8(12, 0, 10)
			b.CvtIF(0, 6)
			b.FLi(1, 500)
			b.FDiv(0, 0, 1)
			idx8(b, 12, 1, 6, 11)
			b.FSt8(12, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock()
			b.Li(6, 0)
			b.Li(7, n)
			fill2 := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 300)
			b.FDiv(0, 0, 1)
			idx8(b, 12, 2, 6, 11)
			b.FSt8(12, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill2)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 0) // row
			b.Li(7, n-1)

			body := b.NewBlock()     // two rows per trip: row u+1's gathers
			for u := 0; u < 2; u++ { // cross row u's X[row+1] store
				b.FLi(15, 0)
				b.Muli(16, 6, 4) // 4 entries per row
				for k := int64(0); k < 4; k++ {
					b.Addi(17, 16, k)
					idx8(b, 10, 3, 17, 11)
					b.Ld8(13, 10, 0)       // col
					idx8(b, 14, 2, 13, 11) // &X[col] — may equal &X[row+1]
					b.FLd8(0, 14, 0)
					idx8(b, 10, 1, 17, 11)
					b.FLd8(1, 10, 0) // A[m]
					b.FMul(2, 0, 1)
					b.FAdd(15, 15, 2)
				}
				b.FLi(0, 2)
				b.FDiv(15, 15, 0)
				idx8(b, 10, 2, 6, 11)
				b.FSt8(10, 8, 15) // X[row+1] = partial
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 2, n, 0)
			return b.MustProgram()
		},
	}
}

// Ammp is the register-pressure benchmark: one superblock computes an
// atom's interactions with four indirectly-indexed neighbours — about
// fifty memory operations per block. 16 alias registers cannot hold the
// speculation working set (the paper's §2.2: ammp gains 30% from 64
// registers), and the indirect force read-modify-writes give an
// Itanium-like ALAT chronic false positives. The neighbour table contains
// occasional duplicate indices, so reordered force stores sometimes truly
// alias — the paper notes ammp loses slightly *with* store reordering
// (Figure 16).
func Ammp() Benchmark { return ammpScaled(1) }

// ammpScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func ammpScaled(scale int64) Benchmark {
	const n = 64
	sweeps := 120 * scale
	return Benchmark{
		Name:        "ammp",
		Description: "molecular dynamics, very large superblocks",
		MemSize:     defaultMem,
		MaxInsts:    12_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA)  // X
			b.Li(2, arrB)  // Y
			b.Li(3, arrC)  // Z
			b.Li(4, arrD)  // FX
			b.Li(5, arrE)  // FY
			b.Li(16, arrF) // FZ
			b.Li(17, arrG) // NB: 4 neighbours per atom
			b.Li(6, 0)
			b.Li(7, n)

			fill := b.NewBlock()
			b.CvtIF(0, 6)
			b.FLi(1, 9)
			b.FDiv(0, 0, 1)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			idx8(b, 10, 3, 6, 11)
			b.FSt8(10, 0, 0)
			b.FLi(0, 0)
			idx8(b, 10, 4, 6, 11)
			b.FSt8(10, 0, 0)
			idx8(b, 10, 5, 6, 11)
			b.FSt8(10, 0, 0)
			idx8(b, 10, 16, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)
			b.NewBlock()
			b.Li(6, 0)
			b.Li(7, n*4)
			fillNB := b.NewBlock() // NB[m] = (m*m*13 + m) % n — 8 atoms get a
			b.Mul(10, 6, 6)        // duplicate neighbour, so reordered force
			b.Muli(10, 10, 13)     // stores occasionally truly alias
			b.Muli(12, 6, 1)
			b.Add(10, 10, 12)
			b.Li(11, n)
			b.Div(12, 10, 11)
			b.Mul(12, 12, 11)
			b.Sub(10, 10, 12)
			idx8(b, 12, 17, 6, 11)
			b.St8(12, 0, 10)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fillNB)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 0) // atom i
			b.Li(7, n)

			body := b.NewBlock() // one atom, 4 neighbours, ~43 memory ops
			idx8(b, 10, 1, 6, 11)
			b.FLd8(0, 10, 0) // x0
			idx8(b, 10, 2, 6, 11)
			b.FLd8(1, 10, 0) // y0
			idx8(b, 10, 3, 6, 11)
			b.FLd8(2, 10, 0) // z0
			b.Muli(18, 6, 4)
			for k := int64(0); k < 4; k++ {
				b.Addi(19, 18, k)
				idx8(b, 10, 17, 19, 11)
				b.Ld8(13, 10, 0) // idx = NB[4i+k]
				idx8(b, 14, 1, 13, 11)
				b.FLd8(3, 14, 0) // X[idx]
				idx8(b, 14, 2, 13, 11)
				b.FLd8(4, 14, 0) // Y[idx]
				idx8(b, 14, 3, 13, 11)
				b.FLd8(5, 14, 0) // Z[idx]
				b.FSub(6, 0, 3)  // dx
				b.FSub(7, 1, 4)  // dy
				b.FSub(8, 2, 5)  // dz
				b.FMul(9, 6, 6)
				b.FMul(10, 7, 7)
				b.FMul(11, 8, 8)
				b.FAdd(9, 9, 10)
				b.FAdd(9, 9, 11)
				b.FLi(12, 1)
				b.FAdd(9, 9, 12)
				b.FDiv(9, 12, 9) // f = 1/(r^2+1)
				// Accumulate into the neighbour's forces: three indirect
				// read-modify-writes. Duplicate neighbour indices make
				// reordered RMWs of the same slot genuinely alias.
				idx8(b, 20, 4, 13, 11)
				b.FLd8(13, 20, 0)
				b.FMul(14, 6, 9)
				b.FAdd(13, 13, 14)
				b.FSt8(20, 0, 13) // FX[idx]
				idx8(b, 21, 5, 13, 11)
				b.FLd8(13, 21, 0)
				b.FMul(14, 7, 9)
				b.FAdd(13, 13, 14)
				b.FSt8(21, 0, 13) // FY[idx]
				idx8(b, 22, 16, 13, 11)
				b.FLd8(13, 22, 0)
				b.FMul(14, 8, 9)
				b.FAdd(13, 13, 14)
				b.FSt8(22, 0, 13) // FZ[idx]
			}
			b.Addi(6, 6, 1)
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 4, n, 0)
			return b.MustProgram()
		},
	}
}

// checksumI appends a loop summing n int64s at base register baseReg into
// r31, stores it at `out`, and halts.
func checksumI(b *guest.Builder, baseReg guest.Reg, n int64) {
	b.NewBlock()
	b.Li(25, 0)
	b.Li(26, n)
	b.Li(31, 0)
	loop := b.NewBlock()
	idx8(b, 27, baseReg, 25, 28)
	b.Ld8(29, 27, 0)
	b.Add(31, 31, 29)
	b.Addi(25, 25, 1)
	b.Blt(25, 26, loop)
	b.NewBlock()
	b.Li(25, out)
	b.St8(25, 0, 31)
	b.Halt()
}
