package workload

import "smarq/internal/guest"

// Swim is the shallow-water stencil: five loads feed two stores per cell,
// over ping-pong arrays. Inside the hot region the five array bases are
// unanalyzable live-ins, so every UNEW/VNEW store may-aliases the next
// cell's U/V/P loads — hoisting those loads is the whole game.
//
// Register map: r1=U r2=V r3=P r4=UN r5=VN, r6=i, r7=limit, r8=t, r9=T,
// r10/r11/r12 address temps; f20/f21 constants.
func Swim() Benchmark { return swimScaled(1) }

// swimScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func swimScaled(scale int64) Benchmark {
	const n = 192
	sweeps := 50 * scale
	return Benchmark{
		Name:        "swim",
		Description: "shallow-water stencil, ping-pong arrays",
		MemSize:     defaultMem,
		MaxInsts:    5_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock() // init scalars
			b.Li(1, arrA)
			b.Li(2, arrB)
			b.Li(3, arrC)
			b.Li(4, arrD)
			b.Li(5, arrE)
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(20, 0.5)
			b.FLi(21, 0.25)

			fill := b.NewBlock() // U[i]=i, V[i]=i*0.5, P[i]=i*0.25+1
			b.CvtIF(0, 6)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			b.FMul(1, 0, 20)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 1)
			b.FMul(2, 0, 21)
			b.FLi(3, 1)
			b.FAdd(2, 2, 3)
			idx8(b, 10, 3, 6, 11)
			b.FSt8(10, 0, 2)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock() // outer sweep setup
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 1)
			b.Li(7, n-2)

			body := b.NewBlock()     // two cells per trip, stores before the
			for k := 0; k < 2; k++ { // next cell's loads
				idx8(b, 10, 1, 6, 11) // &U[i]
				b.FLd8(0, 10, -8)     // U[i-1]
				b.FLd8(1, 10, 0)      // U[i]
				b.FLd8(2, 10, 8)      // U[i+1]
				idx8(b, 12, 2, 6, 11)
				b.FLd8(3, 12, 0) // V[i]
				idx8(b, 12, 3, 6, 11)
				b.FLd8(4, 12, 0) // P[i]
				b.FAdd(5, 0, 2)
				b.FMul(5, 5, 20)
				b.FMul(6, 3, 4)
				b.FAdd(5, 5, 6)
				idx8(b, 12, 4, 6, 11)
				b.FSt8(12, 0, 5) // UN[i]
				b.FMul(7, 4, 20)
				b.FSub(7, 1, 7)
				idx8(b, 12, 5, 6, 11)
				b.FSt8(12, 0, 7) // VN[i]
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock() // copy back: U <- UN, V <- VN
			b.Li(6, 1)
			copyBack := b.NewBlock()
			for k := 0; k < 2; k++ {
				idx8(b, 10, 4, 6, 11)
				b.FLd8(0, 10, 0)
				idx8(b, 12, 1, 6, 11)
				b.FSt8(12, 0, 0)
				idx8(b, 10, 5, 6, 11)
				b.FLd8(1, 10, 0)
				idx8(b, 12, 2, 6, 11)
				b.FSt8(12, 0, 1)
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, copyBack)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 1, n, 0)
			return b.MustProgram()
		},
	}
}

// Mgrid is a multigrid-flavoured stencil: neighbour loads feed a deeper
// floating-point chain, and the same-array accesses use per-iteration
// computed addresses — which a binary-level analysis cannot relate, so
// even same-array neighbours are may-alias (a real property of the
// paper's setting, §1).
func Mgrid() Benchmark { return mgridScaled(1) }

// mgridScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func mgridScaled(scale int64) Benchmark {
	const n = 160
	sweeps := 40 * scale
	return Benchmark{
		Name:        "mgrid",
		Description: "multigrid stencil, deep FP chains",
		MemSize:     defaultMem,
		MaxInsts:    5_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // R
			b.Li(2, arrB) // U
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(20, 0.4)
			b.FLi(21, 0.3)

			fill := b.NewBlock()
			b.CvtIF(0, 6)
			idx8(b, 10, 1, 6, 11)
			b.FSt8(10, 0, 0)
			idx8(b, 10, 2, 6, 11)
			b.FSt8(10, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 1)
			b.Li(7, n-2)

			body := b.NewBlock()
			for k := 0; k < 2; k++ {
				idx8(b, 10, 2, 6, 11) // &U[i]
				b.FLd8(1, 10, 0)      // U[i] (must-alias the store below)
				idx8(b, 12, 1, 6, 11) // &R[i]
				b.FLd8(0, 12, -8)     // R[i-1]
				b.FLd8(2, 12, 0)      // R[i]
				b.FLd8(3, 12, 8)      // R[i+1]
				b.FAdd(4, 0, 3)
				b.FMul(4, 4, 20)
				b.FMul(5, 2, 21)
				b.FAdd(4, 4, 5)
				b.FMul(4, 4, 20) // deepen the chain
				b.FAdd(4, 4, 1)
				b.FSt8(10, 0, 4) // U[i] updated through the same vreg
				b.FLd8(6, 10, 0) // immediate reload: load-elimination fodder
				b.FAdd(31, 31, 6)
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 2, n, 0)
			return b.MustProgram()
		},
	}
}

// Applu is SSOR with indirectly indexed diagonals: the element to update
// is found through an index table, so its address root is a loaded value —
// exactly the "indexed by non-stack-frame registers" case binary alias
// analysis cannot crack (§7). The read-modify-write of A[idx] crosses the
// B/C loads of the next unrolled iteration.
func Applu() Benchmark { return appluScaled(1) }

// appluScaled builds the benchmark with its main loop count multiplied
// by scale (SuiteScaled).
func appluScaled(scale int64) Benchmark {
	const n = 128
	sweeps := 45 * scale
	return Benchmark{
		Name:        "applu",
		Description: "SSOR with indirect diagonal indexing",
		MemSize:     defaultMem,
		MaxInsts:    5_000_000 * uint64(scale),
		Build: func() *guest.Program {
			b := guest.NewBuilder()
			b.NewBlock()
			b.Li(1, arrA) // IX: index table
			b.Li(2, arrB) // A: diagonals
			b.Li(3, arrC) // B
			b.Li(4, arrD) // C
			b.Li(6, 0)
			b.Li(7, n)
			b.FLi(20, 0.9)

			fill := b.NewBlock() // IX[i] = (i*7+3) % n, a collision-free walk
			b.Muli(10, 6, 7)
			b.Addi(10, 10, 3)
			b.Li(11, n)
			b.Div(12, 10, 11)
			b.Mul(12, 12, 11)
			b.Sub(10, 10, 12) // mod
			idx8(b, 12, 1, 6, 11)
			b.St8(12, 0, 10)
			b.CvtIF(0, 6)
			idx8(b, 12, 2, 6, 11)
			b.FSt8(12, 0, 0)
			idx8(b, 12, 3, 6, 11)
			b.FSt8(12, 0, 0)
			idx8(b, 12, 4, 6, 11)
			b.FSt8(12, 0, 0)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, fill)

			b.NewBlock()
			b.Li(8, 0)
			b.Li(9, sweeps)
			outer := b.NewBlock()
			b.Li(6, 0)
			b.Li(7, n-1)

			body := b.NewBlock()
			for k := 0; k < 2; k++ {
				idx8(b, 10, 1, 6, 11)
				b.Ld8(13, 10, 0)       // idx = IX[i]
				idx8(b, 14, 2, 13, 11) // &A[idx] — loaded root
				b.FLd8(0, 14, 0)
				idx8(b, 10, 3, 6, 11)
				b.FLd8(1, 10, 0) // B[i]
				idx8(b, 10, 4, 6, 11)
				b.FLd8(2, 10, 0) // C[i]
				b.FMul(3, 0, 20)
				b.FMul(4, 1, 2)
				b.FAdd(3, 3, 4)
				b.FSt8(14, 0, 3) // A[idx] updated; next k's loads cross this
				b.Addi(6, 6, 1)
			}
			b.Blt(6, 7, body)

			b.NewBlock()
			b.Addi(8, 8, 1)
			b.Blt(8, 9, outer)

			checksumF(b, 2, n, 0)
			return b.MustProgram()
		},
	}
}

// checksumF appends a loop summing n float64s at the array in base
// register baseReg into f31, converts it to r31, stores it at `out`, and
// halts. Uses r25/r26/r27 and f29/f30.
func checksumF(b *guest.Builder, baseReg guest.Reg, n int64, _ int) {
	b.NewBlock()
	b.Li(25, 0)
	b.Li(26, n)
	b.FLi(30, 0)
	loop := b.NewBlock()
	idx8(b, 27, baseReg, 25, 28)
	b.FLd8(29, 27, 0)
	b.FAdd(30, 30, 29)
	b.Addi(25, 25, 1)
	b.Blt(25, 26, loop)
	b.NewBlock()
	b.CvtFI(31, 30)
	b.Li(25, out)
	b.St8(25, 0, 31)
	b.Halt()
}
