// Package workload provides the synthetic benchmark suite standing in for
// the paper's SPECFP2000 programs.
//
// The real benchmarks (and the x86 binaries the paper translated) are not
// available here, so each generator reproduces the *memory behaviour trait*
// the paper attributes to its namesake — the property that makes the
// benchmark interesting for alias speculation:
//
//	wupwise  dense matrix-vector kernels, disjoint arrays, deep FP chains
//	swim     shallow-water stencil: many loads per store, ping-pong arrays
//	mgrid    multigrid stencil: long FP chains behind neighbour loads
//	applu    SSOR with indirectly indexed diagonals (unanalyzable roots)
//	mesa     rasterization: store-heavy spans, one slow store in front —
//	         the store-reordering benchmark (Figure 16: ~13%)
//	galgel   Galerkin coefficients: strided dense sweeps
//	art      neural-net gather: indirect weight loads across update stores
//	equake   sparse matvec with genuine occasional aliasing (rollbacks)
//	facerec  2D correlation: clean disjoint-array speculation
//	ammp     molecular dynamics: very large superblocks, indirect force
//	         accumulation — the register-pressure benchmark (§2.2: +30%
//	         from 64 vs 16 registers) and an ALAT false-positive trap
//	lucas    FFT butterflies: in-place paired updates at opaque distance
//	fma3d    finite elements: node gather/scatter with shared nodes
//	sixtrack particle tracking: independent six-word state maps
//	apsi     mixed pointer-based phases through a descriptor table
//
// Every kernel is written the way dynamic binary optimizers actually see
// code: array base registers are set outside the hot region (so the
// binary-level analysis sees distinct unanalyzable roots), and bodies are
// unrolled with stores of one logical iteration preceding the loads of the
// next — the paper's Figure 2 pattern that makes load hoisting across
// may-alias stores the dominant optimization.
package workload

import "smarq/internal/guest"

// Benchmark is one synthetic program.
type Benchmark struct {
	Name        string
	Description string
	// MemSize is the guest memory the program needs.
	MemSize int
	// MaxInsts bounds a full run (all benchmarks halt well below it).
	MaxInsts uint64
	// Build constructs a fresh program.
	Build func() *guest.Program
}

// Suite returns the full benchmark suite in SPECFP2000 order.
func Suite() []Benchmark {
	return []Benchmark{
		Wupwise(), Swim(), Mgrid(), Applu(), Mesa(), Galgel(),
		Art(), Equake(), Facerec(), Ammp(), Lucas(), Fma3d(),
		Sixtrack(), Apsi(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Common base addresses, spaced so arrays are disjoint. The guest programs
// load these with Li in their init blocks; inside a hot region the bases
// are live-in registers with distinct canonical roots.
const (
	arrA = 1 << 13 // 8192
	arrB = 2 << 13
	arrC = 3 << 13
	arrD = 4 << 13
	arrE = 5 << 13
	arrF = 6 << 13
	arrG = 7 << 13
	arrH = 8 << 13
	out  = 9 << 13
)

// defaultMem comfortably covers all base addresses above.
const defaultMem = 10 << 13

// idx8 emits: dst = base + i*8 (the pervasive addressing idiom).
// Clobbers tmp.
func idx8(b *guest.Builder, dst, base, i, tmp guest.Reg) {
	b.Muli(tmp, i, 8)
	b.Add(dst, base, tmp)
}

// SuiteScaled returns the suite with every benchmark's main loop count
// (and instruction budget) multiplied by scale. Scale 1 is Suite().
// Longer runs amortize the one-time translation cost, which is how the
// paper's 0.05% optimization overhead (Figure 18) emerges from the same
// machinery that measures ~9% on the short default runs.
func SuiteScaled(scale int64) []Benchmark {
	if scale <= 1 {
		return Suite()
	}
	return []Benchmark{
		wupwiseScaled(scale), swimScaled(scale), mgridScaled(scale),
		appluScaled(scale), mesaScaled(scale), galgelScaled(scale),
		artScaled(scale), equakeScaled(scale), facerecScaled(scale),
		ammpScaled(scale), lucasScaled(scale), fma3dScaled(scale),
		sixtrackScaled(scale), apsiScaled(scale),
	}
}
