package workload

import (
	"testing"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/interp"
)

func TestSuiteValidatesAndHalts(t *testing.T) {
	for _, bm := range Suite() {
		t.Run(bm.Name, func(t *testing.T) {
			prog := bm.Build()
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			it := interp.New(prog, &guest.State{}, guest.NewMemory(bm.MemSize))
			halted, err := it.Run(0, bm.MaxInsts)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !halted {
				t.Fatalf("did not halt within %d insts (used %d)", bm.MaxInsts, it.DynInsts)
			}
			t.Logf("%s: %d dynamic guest instructions", bm.Name, it.DynInsts)
		})
	}
}

func TestSuiteIsDeterministic(t *testing.T) {
	for _, bm := range Suite() {
		run := func() (uint64, uint64) {
			prog := bm.Build()
			mem := guest.NewMemory(bm.MemSize)
			it := interp.New(prog, &guest.State{}, mem)
			if _, err := it.Run(0, bm.MaxInsts); err != nil {
				t.Fatal(err)
			}
			cs, _ := mem.Load(out, 8)
			return it.DynInsts, cs
		}
		n1, c1 := run()
		n2, c2 := run()
		if n1 != n2 || c1 != c2 {
			t.Errorf("%s: non-deterministic (%d/%d insts, %#x/%#x checksum)", bm.Name, n1, n2, c1, c2)
		}
	}
}

// TestSuiteDifferential is the suite-wide correctness gate: every
// benchmark computes the same final memory and registers under the
// dynamic optimization system as under pure interpretation, for the
// primary SMARQ configuration and the most divergent others.
func TestSuiteDifferential(t *testing.T) {
	configs := map[string]dynopt.Config{
		"smarq64":  dynopt.ConfigSMARQ(64),
		"smarq16":  dynopt.ConfigSMARQ(16),
		"alat":     dynopt.ConfigALAT(),
		"efficeon": dynopt.ConfigEfficeon(),
		"nohw":     dynopt.ConfigNoHW(),
	}
	for _, bm := range Suite() {
		// Reference.
		prog := bm.Build()
		refMem := guest.NewMemory(bm.MemSize)
		ref := interp.New(prog, &guest.State{}, refMem)
		if halted, err := ref.Run(0, bm.MaxInsts); err != nil || !halted {
			t.Fatalf("%s reference: halted=%v err=%v", bm.Name, halted, err)
		}
		for cname, cfg := range configs {
			t.Run(bm.Name+"/"+cname, func(t *testing.T) {
				sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
				halted, err := sys.Run(bm.MaxInsts)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !halted {
					t.Fatalf("did not halt (retired %d)", sys.Stats.GuestInsts)
				}
				for r := 0; r < guest.NumRegs; r++ {
					if sys.State().R[r] != ref.St.R[r] {
						t.Errorf("r%d = %d, interpreter got %d", r, sys.State().R[r], ref.St.R[r])
					}
					if sys.State().F[r] != ref.St.F[r] {
						t.Errorf("f%d = %v, interpreter got %v", r, sys.State().F[r], ref.St.F[r])
					}
				}
				for a := 0; a < bm.MemSize; a += 8 {
					got, _ := sys.Mem().Load(uint64(a), 8)
					want, _ := refMem.Load(uint64(a), 8)
					if got != want {
						t.Fatalf("mem[%#x] = %#x, interpreter got %#x", a, got, want)
					}
				}
				if sys.Stats.Commits == 0 {
					t.Error("no region ever committed")
				}
			})
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("ammp"); !ok {
		t.Error("ammp missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("found a benchmark that should not exist")
	}
	names := map[string]bool{}
	for _, bm := range Suite() {
		if names[bm.Name] {
			t.Errorf("duplicate benchmark %s", bm.Name)
		}
		names[bm.Name] = true
		if bm.Description == "" {
			t.Errorf("%s has no description", bm.Name)
		}
	}
	if len(names) != 14 {
		t.Errorf("suite has %d benchmarks, want 14", len(names))
	}
}

// TestAmmpHasLargeSuperblocks checks the trait the paper attributes to
// ammp: far more memory operations per superblock than the rest of the
// suite (Figure 14).
func TestAmmpHasLargeSuperblocks(t *testing.T) {
	maxMem := func(name string) int {
		bm, _ := ByName(name)
		sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), dynopt.ConfigSMARQ(64))
		if _, err := sys.Run(bm.MaxInsts); err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, r := range sys.Stats.Regions {
			if r.MemOps > max {
				max = r.MemOps
			}
		}
		return max
	}
	ammp := maxMem("ammp")
	swim := maxMem("swim")
	if ammp < 30 {
		t.Errorf("ammp max mem ops per superblock = %d, want >= 30", ammp)
	}
	if ammp <= swim {
		t.Errorf("ammp (%d) should exceed swim (%d) in mem ops per superblock", ammp, swim)
	}
}

// TestSuiteScaled: scaled benchmarks retire proportionally more
// instructions, stay deterministic, and scale 1 is the plain suite.
func TestSuiteScaled(t *testing.T) {
	if len(SuiteScaled(1)) != 14 || len(SuiteScaled(4)) != 14 {
		t.Fatal("scaled suite size wrong")
	}
	base, _ := ByName("mgrid")
	var scaled Benchmark
	for _, bm := range SuiteScaled(4) {
		if bm.Name == "mgrid" {
			scaled = bm
		}
	}
	run := func(bm Benchmark) uint64 {
		it := interp.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize))
		halted, err := it.Run(0, bm.MaxInsts)
		if err != nil || !halted {
			t.Fatalf("%s: halted=%v err=%v", bm.Name, halted, err)
		}
		return it.DynInsts
	}
	n1, n4 := run(base), run(scaled)
	// The hot loop dominates, so x4 sweeps lands near x4 instructions.
	if n4 < 3*n1 || n4 > 5*n1 {
		t.Errorf("scaled mgrid ran %d insts vs %d — not ~4x", n4, n1)
	}
}

// TestOverheadAmortizesWithScale is Figure 18's claim measured directly:
// the optimizer's share of execution drops as the run lengthens, because
// translation is one-time work.
func TestOverheadAmortizesWithScale(t *testing.T) {
	overhead := func(bm Benchmark) float64 {
		sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), dynopt.ConfigSMARQ(64))
		if halted, err := sys.Run(bm.MaxInsts); err != nil || !halted {
			t.Fatalf("halted=%v err=%v", halted, err)
		}
		return float64(sys.Stats.OptCycles+sys.Stats.SchedCycles) / float64(sys.Stats.TotalCycles)
	}
	short, _ := ByName("swim")
	var long Benchmark
	for _, bm := range SuiteScaled(8) {
		if bm.Name == "swim" {
			long = bm
		}
	}
	oShort, oLong := overhead(short), overhead(long)
	if oLong >= oShort/2 {
		t.Errorf("overhead did not amortize: short %.4f, 8x run %.4f", oShort, oLong)
	}
}
