// Package xlate translates superblocks into optimizer IR.
//
// Translation renames every guest register definition into a fresh virtual
// register, which removes all register anti- and output-dependences inside
// the region (only true dependences and memory dependences remain — the
// freedom the paper's speculative scheduler exploits). It also performs the
// lightweight symbolic address analysis the binary-level alias analysis
// relies on: each memory operation is canonicalized to root-register +
// constant displacement (or an absolute address) by folding copies, adds
// with constants, and constant loads.
package xlate

import (
	"fmt"

	"smarq/internal/guest"
	"smarq/internal/ir"
	"smarq/internal/region"
)

type canonAddr struct {
	root ir.VReg // NoVReg when abs
	off  int64
	abs  bool
}

type translator struct {
	reg      *ir.Region
	curInt   [guest.NumRegs]ir.VReg
	curFloat [guest.NumRegs]ir.VReg
	next     ir.VReg
	consts   map[ir.VReg]int64 // vregs with statically known values
	canon    map[ir.VReg]canonAddr
}

// Translate converts a superblock into an IR region.
func Translate(sb *region.Superblock) (*ir.Region, error) {
	t := &translator{
		reg: &ir.Region{
			Entry:       sb.Entry,
			FinalTarget: sb.FinalTarget,
		},
		consts: make(map[ir.VReg]int64),
		canon:  make(map[ir.VReg]canonAddr),
	}
	for r := 0; r < guest.NumRegs; r++ {
		t.curInt[r] = ir.LiveInInt(guest.Reg(r))
		t.curFloat[r] = ir.LiveInFloat(guest.Reg(r))
	}
	t.next = ir.VReg(2 * guest.NumRegs)
	// Live-in vregs are their own canonical roots.
	for v := ir.VReg(0); v < t.next; v++ {
		t.canon[v] = canonAddr{root: v}
	}

	for _, in := range sb.Insts {
		if err := t.translateInst(in); err != nil {
			return nil, err
		}
	}

	t.reg.NumVRegs = int(t.next)
	t.reg.IntOut = t.curInt
	t.reg.FloatOut = t.curFloat
	return t.reg, nil
}

func (t *translator) fresh() ir.VReg {
	v := t.next
	t.next++
	return v
}

func (t *translator) emit(o *ir.Op) *ir.Op {
	o.ID = len(t.reg.Ops)
	o.AROffset = -1
	t.reg.Ops = append(t.reg.Ops, o)
	return o
}

// defInt creates a fresh vreg for a guest integer register definition.
func (t *translator) defInt(r guest.Reg) ir.VReg {
	v := t.fresh()
	t.curInt[r] = v
	return v
}

func (t *translator) defFloat(r guest.Reg) ir.VReg {
	v := t.fresh()
	t.curFloat[r] = v
	return v
}

func (t *translator) canonOf(v ir.VReg) canonAddr {
	if c, ok := t.canon[v]; ok {
		return c
	}
	return canonAddr{root: v}
}

func (t *translator) translateInst(ri region.Inst) error {
	in := ri.Inst
	op := in.Op
	switch {
	case op == guest.Nop, op == guest.Jmp, op == guest.Halt:
		// Jmp and Halt carry no region-level semantics: the region's
		// FinalTarget already encodes where control goes on completion.
		return nil

	case op.IsBranch():
		if !ri.IsGuard {
			return nil // both directions stay on trace
		}
		o := &ir.Op{
			Kind:         ir.Guard,
			GOp:          op,
			Dst:          ir.NoVReg,
			Srcs:         []ir.VReg{t.curInt[in.Rs1], t.curInt[in.Rs2]},
			SrcFloat:     []bool{false, false},
			OnTraceTaken: ri.OnTraceTaken,
			OffTrace:     ri.OffTrace,
		}
		t.emit(o)
		return nil

	case op.IsLoad():
		base := t.curInt[in.Rs1]
		var dst ir.VReg
		if op.IsFloat() {
			dst = t.defFloat(in.Rd)
		} else {
			dst = t.defInt(in.Rd)
		}
		c := t.canonOf(base)
		o := &ir.Op{
			Kind:     ir.Load,
			GOp:      op,
			Dst:      dst,
			DstFloat: op.IsFloat(),
			Srcs:     []ir.VReg{base},
			SrcFloat: []bool{false},
			Imm:      in.Imm,
			Mem: &ir.MemInfo{
				Base: base, Off: in.Imm, Size: op.AccessSize(),
				Root: c.root, RootOff: c.off + in.Imm, Abs: c.abs,
			},
		}
		t.emit(o)
		return nil

	case op.IsStore():
		base := t.curInt[in.Rs1]
		var val ir.VReg
		valFloat := op.IsFloat()
		if valFloat {
			val = t.curFloat[in.Rd]
		} else {
			val = t.curInt[in.Rd]
		}
		c := t.canonOf(base)
		o := &ir.Op{
			Kind:     ir.Store,
			GOp:      op,
			Dst:      ir.NoVReg,
			Srcs:     []ir.VReg{val, base},
			SrcFloat: []bool{valFloat, false},
			Imm:      in.Imm,
			Mem: &ir.MemInfo{
				Base: base, Off: in.Imm, Size: op.AccessSize(),
				Root: c.root, RootOff: c.off + in.Imm, Abs: c.abs,
			},
		}
		t.emit(o)
		return nil

	case op.IsFloat():
		// Float ALU: sources from the float file except CvtIF.
		var srcs []ir.VReg
		var sf []bool
		switch op {
		case guest.FLi:
			// no sources
		case guest.CvtIF:
			srcs = []ir.VReg{t.curInt[in.Rs1]}
			sf = []bool{false}
		case guest.FMov, guest.FNeg, guest.FAbs, guest.FSqrt:
			srcs = []ir.VReg{t.curFloat[in.Rs1]}
			sf = []bool{true}
		default:
			srcs = []ir.VReg{t.curFloat[in.Rs1], t.curFloat[in.Rs2]}
			sf = []bool{true, true}
		}
		o := &ir.Op{
			Kind: ir.Arith, GOp: op,
			Dst: t.defFloat(in.Rd), DstFloat: true,
			Srcs: srcs, SrcFloat: sf,
			FImm: in.FImm,
		}
		t.emit(o)
		return nil

	case op == guest.CvtFI:
		o := &ir.Op{
			Kind: ir.Arith, GOp: op,
			Dst:  t.defInt(in.Rd),
			Srcs: []ir.VReg{t.curFloat[in.Rs1]}, SrcFloat: []bool{true},
		}
		t.emit(o)
		return nil

	default:
		return t.translateIntALU(in)
	}
}

func (t *translator) translateIntALU(in guest.Inst) error {
	op := in.Op
	var srcs []ir.VReg
	switch op {
	case guest.Li:
		// no sources
	case guest.Mov:
		srcs = []ir.VReg{t.curInt[in.Rs1]}
	case guest.Addi, guest.Muli:
		srcs = []ir.VReg{t.curInt[in.Rs1]}
	case guest.Add, guest.Sub, guest.Mul, guest.Div, guest.And, guest.Or,
		guest.Xor, guest.Shl, guest.Shr, guest.Slt:
		srcs = []ir.VReg{t.curInt[in.Rs1], t.curInt[in.Rs2]}
	default:
		return fmt.Errorf("xlate: unhandled opcode %s", op)
	}
	dst := t.defInt(in.Rd)
	sf := make([]bool, len(srcs))
	o := &ir.Op{
		Kind: ir.Arith, GOp: op,
		Dst: dst, Srcs: srcs, SrcFloat: sf, Imm: in.Imm,
	}
	t.emit(o)
	t.propagate(op, dst, srcs, in.Imm)
	return nil
}

// propagate maintains the constant and canonical-address views used for
// memory disambiguation. Only patterns a binary-level analysis can see
// cheaply are folded: constant loads, copies, and additions of constants
// (§7 cites [13,14]: binary alias analysis must be simple to be usable in
// a dynamic optimizer).
func (t *translator) propagate(op guest.Opcode, dst ir.VReg, srcs []ir.VReg, imm int64) {
	switch op {
	case guest.Li:
		t.consts[dst] = imm
		t.canon[dst] = canonAddr{root: ir.NoVReg, off: imm, abs: true}
	case guest.Mov:
		if c, ok := t.consts[srcs[0]]; ok {
			t.consts[dst] = c
		}
		t.canon[dst] = t.canonOf(srcs[0])
	case guest.Addi:
		if c, ok := t.consts[srcs[0]]; ok {
			t.consts[dst] = c + imm
		}
		ca := t.canonOf(srcs[0])
		ca.off += imm
		t.canon[dst] = ca
	case guest.Add:
		c0, ok0 := t.consts[srcs[0]]
		c1, ok1 := t.consts[srcs[1]]
		switch {
		case ok0 && ok1:
			t.consts[dst] = c0 + c1
			t.canon[dst] = canonAddr{root: ir.NoVReg, off: c0 + c1, abs: true}
		case ok1:
			ca := t.canonOf(srcs[0])
			ca.off += c1
			t.canon[dst] = ca
		case ok0:
			ca := t.canonOf(srcs[1])
			ca.off += c0
			t.canon[dst] = ca
		}
	case guest.Sub:
		if c1, ok := t.consts[srcs[1]]; ok {
			if c0, ok0 := t.consts[srcs[0]]; ok0 {
				t.consts[dst] = c0 - c1
				t.canon[dst] = canonAddr{root: ir.NoVReg, off: c0 - c1, abs: true}
			} else {
				ca := t.canonOf(srcs[0])
				ca.off -= c1
				t.canon[dst] = ca
			}
		}
	case guest.Muli:
		if c, ok := t.consts[srcs[0]]; ok {
			t.consts[dst] = c * imm
		}
	case guest.Mul:
		if c0, ok0 := t.consts[srcs[0]]; ok0 {
			if c1, ok1 := t.consts[srcs[1]]; ok1 {
				t.consts[dst] = c0 * c1
			}
		}
	}
}
