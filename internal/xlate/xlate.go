// Package xlate translates superblocks into optimizer IR.
//
// Translation renames every guest register definition into a fresh virtual
// register, which removes all register anti- and output-dependences inside
// the region (only true dependences and memory dependences remain — the
// freedom the paper's speculative scheduler exploits). It also performs the
// lightweight symbolic address analysis the binary-level alias analysis
// relies on: each memory operation is canonicalized to root-register +
// constant displacement (or an absolute address) by folding copies, adds
// with constants, and constant loads.
//
// Ops, MemInfos and operand lists are carved out of an ir.Arena sized from
// the superblock (each guest instruction emits at most one op with at most
// two operands), so translation performs a constant number of heap
// allocations regardless of region size — and none at all once a recycled
// arena's slabs reach steady state (TranslateArena).
package xlate

import (
	"fmt"
	"sync"

	"smarq/internal/guest"
	"smarq/internal/ir"
	"smarq/internal/region"
)

type canonAddr struct {
	root ir.VReg // NoVReg when abs
	off  int64
	abs  bool
}

type translator struct {
	reg      *ir.Region
	ar       *ir.Arena
	curInt   [guest.NumRegs]ir.VReg
	curFloat [guest.NumRegs]ir.VReg
	next     ir.VReg

	// Constant and canonical-address views, indexed by vreg (vreg count is
	// bounded by 2*guest.NumRegs live-ins + one definition per inst).
	constOK  []bool
	constVal []int64
	canonOK  []bool
	canon    []canonAddr
}

// transPool recycles translator scratch (the constant and canonical
// views) across calls; the region data itself lives in the caller's
// arena.
var transPool = sync.Pool{New: func() interface{} { return new(translator) }}

// Translate converts a superblock into an IR region backed by a private,
// never-recycled arena, so the result may be retained indefinitely.
func Translate(sb *region.Superblock) (*ir.Region, error) {
	return TranslateArena(sb, ir.NewArena())
}

// TranslateArena converts a superblock into an IR region carved out of
// ar. The caller owns the arena: every pointer in the returned region
// aliases arena memory and dies at the arena's next Reset, so long-lived
// consumers must ir.Freeze whatever they keep. Translating again into
// the same arena without a Reset is allowed (the compile retry ladder
// does this); the earlier region's slab space is simply left behind.
func TranslateArena(sb *region.Superblock, ar *ir.Arena) (*ir.Region, error) {
	n := len(sb.Insts)
	maxVRegs := 2*guest.NumRegs + n
	t := transPool.Get().(*translator)
	t.ar = ar
	t.reg = ar.NewRegion(n)
	t.reg.Entry = sb.Entry
	t.reg.FinalTarget = sb.FinalTarget
	t.sizeViews(maxVRegs)
	for r := 0; r < guest.NumRegs; r++ {
		t.curInt[r] = ir.LiveInInt(guest.Reg(r))
		t.curFloat[r] = ir.LiveInFloat(guest.Reg(r))
	}
	t.next = ir.VReg(2 * guest.NumRegs)
	// Live-in vregs are their own canonical roots — exactly canonOf's
	// fallback for vregs with no recorded canonical form, so nothing to
	// initialize.

	for _, in := range sb.Insts {
		if err := t.translateInst(in); err != nil {
			t.release()
			return nil, err
		}
	}

	reg := t.reg
	reg.NumVRegs = int(t.next)
	reg.IntOut = t.curInt
	reg.FloatOut = t.curFloat
	t.release()
	return reg, nil
}

// sizeViews resizes the constant/canonical views to maxVRegs, clearing
// only the validity flags (the value arrays are read through them).
func (t *translator) sizeViews(maxVRegs int) {
	if cap(t.constOK) < maxVRegs {
		t.constOK = make([]bool, maxVRegs)
		t.constVal = make([]int64, maxVRegs)
		t.canonOK = make([]bool, maxVRegs)
		t.canon = make([]canonAddr, maxVRegs)
		return
	}
	t.constOK = t.constOK[:maxVRegs]
	t.canonOK = t.canonOK[:maxVRegs]
	t.constVal = t.constVal[:maxVRegs]
	t.canon = t.canon[:maxVRegs]
	for i := range t.constOK {
		t.constOK[i] = false
	}
	for i := range t.canonOK {
		t.canonOK[i] = false
	}
}

// release drops the region references and returns the translator's
// scratch to the pool.
func (t *translator) release() {
	t.reg = nil
	t.ar = nil
	transPool.Put(t)
}

func (t *translator) fresh() ir.VReg {
	v := t.next
	t.next++
	return v
}

// emit appends a new op to the region, allocated from the arena.
func (t *translator) emit(o ir.Op) *ir.Op {
	o.ID = len(t.reg.Ops)
	o.AROffset = -1
	p := t.ar.NewOp(o)
	t.reg.Ops = append(t.reg.Ops, p)
	return p
}

// newMem places a MemInfo in the arena.
func (t *translator) newMem(m ir.MemInfo) *ir.MemInfo { return t.ar.NewMem(m) }

// srcs1/srcs2 and flags1/flags2 carve capped operand lists out of the
// arena slabs.
func (t *translator) srcs1(a ir.VReg) []ir.VReg { return t.ar.Srcs1(a) }

func (t *translator) srcs2(a, b ir.VReg) []ir.VReg { return t.ar.Srcs2(a, b) }

func (t *translator) flags1(a bool) []bool { return t.ar.Flags1(a) }

func (t *translator) flags2(a, b bool) []bool { return t.ar.Flags2(a, b) }

// defInt creates a fresh vreg for a guest integer register definition.
func (t *translator) defInt(r guest.Reg) ir.VReg {
	v := t.fresh()
	t.curInt[r] = v
	return v
}

func (t *translator) defFloat(r guest.Reg) ir.VReg {
	v := t.fresh()
	t.curFloat[r] = v
	return v
}

func (t *translator) canonOf(v ir.VReg) canonAddr {
	if v >= 0 && int(v) < len(t.canon) && t.canonOK[v] {
		return t.canon[v]
	}
	return canonAddr{root: v}
}

func (t *translator) setCanon(v ir.VReg, c canonAddr) {
	t.canonOK[v] = true
	t.canon[v] = c
}

func (t *translator) constOf(v ir.VReg) (int64, bool) {
	if v >= 0 && int(v) < len(t.constVal) && t.constOK[v] {
		return t.constVal[v], true
	}
	return 0, false
}

func (t *translator) setConst(v ir.VReg, c int64) {
	t.constOK[v] = true
	t.constVal[v] = c
}

func (t *translator) translateInst(ri region.Inst) error {
	in := ri.Inst
	op := in.Op
	switch {
	case op == guest.Nop, op == guest.Jmp, op == guest.Halt:
		// Jmp and Halt carry no region-level semantics: the region's
		// FinalTarget already encodes where control goes on completion.
		return nil

	case op.IsBranch():
		if !ri.IsGuard {
			return nil // both directions stay on trace
		}
		t.emit(ir.Op{
			Kind:         ir.Guard,
			GOp:          op,
			Dst:          ir.NoVReg,
			Srcs:         t.srcs2(t.curInt[in.Rs1], t.curInt[in.Rs2]),
			SrcFloat:     t.flags2(false, false),
			OnTraceTaken: ri.OnTraceTaken,
			OffTrace:     ri.OffTrace,
		})
		return nil

	case op.IsLoad():
		base := t.curInt[in.Rs1]
		var dst ir.VReg
		if op.IsFloat() {
			dst = t.defFloat(in.Rd)
		} else {
			dst = t.defInt(in.Rd)
		}
		c := t.canonOf(base)
		t.emit(ir.Op{
			Kind:     ir.Load,
			GOp:      op,
			Dst:      dst,
			DstFloat: op.IsFloat(),
			Srcs:     t.srcs1(base),
			SrcFloat: t.flags1(false),
			Imm:      in.Imm,
			Mem: t.newMem(ir.MemInfo{
				Base: base, Off: in.Imm, Size: op.AccessSize(),
				Root: c.root, RootOff: c.off + in.Imm, Abs: c.abs,
			}),
		})
		return nil

	case op.IsStore():
		base := t.curInt[in.Rs1]
		var val ir.VReg
		valFloat := op.IsFloat()
		if valFloat {
			val = t.curFloat[in.Rd]
		} else {
			val = t.curInt[in.Rd]
		}
		c := t.canonOf(base)
		t.emit(ir.Op{
			Kind:     ir.Store,
			GOp:      op,
			Dst:      ir.NoVReg,
			Srcs:     t.srcs2(val, base),
			SrcFloat: t.flags2(valFloat, false),
			Imm:      in.Imm,
			Mem: t.newMem(ir.MemInfo{
				Base: base, Off: in.Imm, Size: op.AccessSize(),
				Root: c.root, RootOff: c.off + in.Imm, Abs: c.abs,
			}),
		})
		return nil

	case op.IsFloat():
		// Float ALU: sources from the float file except CvtIF.
		var srcs []ir.VReg
		var sf []bool
		switch op {
		case guest.FLi:
			// no sources
		case guest.CvtIF:
			srcs = t.srcs1(t.curInt[in.Rs1])
			sf = t.flags1(false)
		case guest.FMov, guest.FNeg, guest.FAbs, guest.FSqrt:
			srcs = t.srcs1(t.curFloat[in.Rs1])
			sf = t.flags1(true)
		default:
			srcs = t.srcs2(t.curFloat[in.Rs1], t.curFloat[in.Rs2])
			sf = t.flags2(true, true)
		}
		t.emit(ir.Op{
			Kind: ir.Arith, GOp: op,
			Dst: t.defFloat(in.Rd), DstFloat: true,
			Srcs: srcs, SrcFloat: sf,
			FImm: in.FImm,
		})
		return nil

	case op == guest.CvtFI:
		t.emit(ir.Op{
			Kind: ir.Arith, GOp: op,
			Dst:  t.defInt(in.Rd),
			Srcs: t.srcs1(t.curFloat[in.Rs1]), SrcFloat: t.flags1(true),
		})
		return nil

	default:
		return t.translateIntALU(in)
	}
}

func (t *translator) translateIntALU(in guest.Inst) error {
	op := in.Op
	var srcs []ir.VReg
	switch op {
	case guest.Li:
		// no sources
	case guest.Mov:
		srcs = t.srcs1(t.curInt[in.Rs1])
	case guest.Addi, guest.Muli:
		srcs = t.srcs1(t.curInt[in.Rs1])
	case guest.Add, guest.Sub, guest.Mul, guest.Div, guest.And, guest.Or,
		guest.Xor, guest.Shl, guest.Shr, guest.Slt:
		srcs = t.srcs2(t.curInt[in.Rs1], t.curInt[in.Rs2])
	default:
		return fmt.Errorf("xlate: unhandled opcode %s", op)
	}
	dst := t.defInt(in.Rd)
	var sf []bool
	switch len(srcs) {
	case 1:
		sf = t.flags1(false)
	case 2:
		sf = t.flags2(false, false)
	}
	t.emit(ir.Op{
		Kind: ir.Arith, GOp: op,
		Dst: dst, Srcs: srcs, SrcFloat: sf, Imm: in.Imm,
	})
	t.propagate(op, dst, srcs, in.Imm)
	return nil
}

// propagate maintains the constant and canonical-address views used for
// memory disambiguation. Only patterns a binary-level analysis can see
// cheaply are folded: constant loads, copies, and additions of constants
// (§7 cites [13,14]: binary alias analysis must be simple to be usable in
// a dynamic optimizer).
func (t *translator) propagate(op guest.Opcode, dst ir.VReg, srcs []ir.VReg, imm int64) {
	switch op {
	case guest.Li:
		t.setConst(dst, imm)
		t.setCanon(dst, canonAddr{root: ir.NoVReg, off: imm, abs: true})
	case guest.Mov:
		if c, ok := t.constOf(srcs[0]); ok {
			t.setConst(dst, c)
		}
		t.setCanon(dst, t.canonOf(srcs[0]))
	case guest.Addi:
		if c, ok := t.constOf(srcs[0]); ok {
			t.setConst(dst, c+imm)
		}
		ca := t.canonOf(srcs[0])
		ca.off += imm
		t.setCanon(dst, ca)
	case guest.Add:
		c0, ok0 := t.constOf(srcs[0])
		c1, ok1 := t.constOf(srcs[1])
		switch {
		case ok0 && ok1:
			t.setConst(dst, c0+c1)
			t.setCanon(dst, canonAddr{root: ir.NoVReg, off: c0 + c1, abs: true})
		case ok1:
			ca := t.canonOf(srcs[0])
			ca.off += c1
			t.setCanon(dst, ca)
		case ok0:
			ca := t.canonOf(srcs[1])
			ca.off += c0
			t.setCanon(dst, ca)
		}
	case guest.Sub:
		if c1, ok := t.constOf(srcs[1]); ok {
			if c0, ok0 := t.constOf(srcs[0]); ok0 {
				t.setConst(dst, c0-c1)
				t.setCanon(dst, canonAddr{root: ir.NoVReg, off: c0 - c1, abs: true})
			} else {
				ca := t.canonOf(srcs[0])
				ca.off -= c1
				t.setCanon(dst, ca)
			}
		}
	case guest.Muli:
		if c, ok := t.constOf(srcs[0]); ok {
			t.setConst(dst, c*imm)
		}
	case guest.Mul:
		if c0, ok0 := t.constOf(srcs[0]); ok0 {
			if c1, ok1 := t.constOf(srcs[1]); ok1 {
				t.setConst(dst, c0*c1)
			}
		}
	}
}
