package xlate

import (
	"testing"

	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/ir"
	"smarq/internal/region"
)

// formOne builds a program with builder fn, interprets it to get a profile,
// and forms a superblock at seed.
func formOne(t *testing.T, seed int, build func(*guest.Builder)) *region.Superblock {
	t.Helper()
	b := guest.NewBuilder()
	build(b)
	prog := b.MustProgram()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(4096))
	// A fault during profiling is fine for these tests: straight-line
	// traces form correctly from an empty profile.
	_, _ = it.Run(0, 100_000)
	sb, err := region.Form(prog, it.Prof, seed, region.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

func TestTranslateRenaming(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.Li(1, 100)    // v64 = 100
		b.Addi(1, 1, 8) // v65 = v64 + 8 — r1 redefined
		b.Ld8(2, 1, 0)  // v66 = mem[v65]
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(reg.Ops) != 3 {
		t.Fatalf("got %d ops, want 3 (halt dropped)", len(reg.Ops))
	}
	li, addi, ld := reg.Ops[0], reg.Ops[1], reg.Ops[2]
	if li.Dst == addi.Dst {
		t.Error("redefinition of r1 did not get a fresh vreg")
	}
	if addi.Srcs[0] != li.Dst {
		t.Error("addi does not read li's vreg")
	}
	if ld.Mem.Base != addi.Dst {
		t.Error("load base is not the renamed r1")
	}
	if reg.IntOut[1] != addi.Dst {
		t.Errorf("IntOut[1] = v%d, want v%d", reg.IntOut[1], addi.Dst)
	}
	if reg.IntOut[2] != ld.Dst {
		t.Errorf("IntOut[2] = v%d, want v%d", reg.IntOut[2], ld.Dst)
	}
}

func TestTranslateCanonicalAddresses(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.Addi(2, 1, 16) // r2 = r1 + 16
		b.Ld8(3, 1, 0)   // [r1+0]  -> root v1, off 0
		b.Ld8(4, 2, 8)   // [r2+8]  -> root v1, off 24
		b.Li(5, 512)     // absolute
		b.St8(5, 4, 3)   // [512+4] -> abs 516
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	var mems []*ir.Op
	for _, o := range reg.Ops {
		if o.IsMem() {
			mems = append(mems, o)
		}
	}
	if len(mems) != 3 {
		t.Fatalf("got %d mem ops, want 3", len(mems))
	}
	m0, m1, m2 := mems[0].Mem, mems[1].Mem, mems[2].Mem
	if m0.Abs || m0.Root != ir.LiveInInt(1) || m0.RootOff != 0 {
		t.Errorf("m0 canon = %+v, want root v1 off 0", m0)
	}
	if m1.Abs || m1.Root != ir.LiveInInt(1) || m1.RootOff != 24 {
		t.Errorf("m1 canon = %+v, want root v1 off 24", m1)
	}
	if !m2.Abs || m2.RootOff != 516 {
		t.Errorf("m2 canon = %+v, want abs 516", m2)
	}
}

func TestTranslateAddWithConstant(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.Li(2, 24)    // const
		b.Add(3, 1, 2) // r3 = r1 + 24
		b.Add(4, 2, 1) // r4 = 24 + r1 (const on the left)
		b.Sub(5, 1, 2) // r5 = r1 - 24
		b.Ld8(6, 3, 0)
		b.Ld8(7, 4, 0)
		b.Ld8(8, 5, 0)
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	mems := reg.MemOps()
	root := ir.LiveInInt(1)
	wants := []int64{24, 24, -24}
	for i, m := range mems {
		if m.Mem.Abs || m.Mem.Root != root || m.Mem.RootOff != wants[i] {
			t.Errorf("mem %d canon = %+v, want root v1 off %d", i, m.Mem, wants[i])
		}
	}
}

func TestTranslateGuard(t *testing.T) {
	sb := formOne(t, 1, func(b *guest.Builder) {
		b.NewBlock() // B0
		b.Li(1, 50)
		b.NewBlock() // B1: loop
		b.Addi(1, 1, -1)
		b.Bne(1, 0, 1)
		b.NewBlock() // B2
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	var g *ir.Op
	for _, o := range reg.Ops {
		if o.Kind == ir.Guard {
			g = o
		}
	}
	if g == nil {
		t.Fatal("no guard emitted")
	}
	if !g.OnTraceTaken {
		t.Error("loop-back guard should expect taken")
	}
	if g.OffTrace != 2 {
		t.Errorf("guard OffTrace = %d, want 2", g.OffTrace)
	}
	if g.GOp != guest.Bne {
		t.Errorf("guard GOp = %s, want bne", g.GOp)
	}
	if reg.FinalTarget != 1 {
		t.Errorf("FinalTarget = %d, want 1", reg.FinalTarget)
	}
}

func TestTranslateFloatOps(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.FLi(1, 2.5)
		b.FLd8(2, 3, 8)
		b.FMul(4, 1, 2)
		b.FSt8(3, 16, 4)
		b.CvtFI(5, 4)
		b.CvtIF(6, 5)
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := reg.Ops
	if !ops[0].DstFloat {
		t.Error("fli dst not float")
	}
	ld := ops[1]
	if !ld.DstFloat || ld.SrcFloat[0] {
		t.Error("fld8 file flags wrong")
	}
	st := ops[3]
	if st.Kind != ir.Store || !st.SrcFloat[0] || st.SrcFloat[1] {
		t.Errorf("fst8 flags wrong: %+v", st)
	}
	if st.Srcs[0] != ops[2].Dst {
		t.Error("store value is not the fmul result")
	}
	cvtfi := ops[4]
	if cvtfi.DstFloat || !cvtfi.SrcFloat[0] {
		t.Error("cvtfi file flags wrong")
	}
	if reg.FloatOut[4] != ops[2].Dst {
		t.Error("FloatOut[4] not the fmul result")
	}
}

func TestTranslateStoreValueOperand(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.Li(1, 7)
		b.St8(2, 0, 1)
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	st := reg.Ops[1]
	if st.Srcs[0] != reg.Ops[0].Dst {
		t.Error("store value operand is not li's vreg")
	}
	if st.Srcs[1] != ir.LiveInInt(2) {
		t.Error("store base operand is not live-in r2")
	}
}

func TestTranslateDropsJmp(t *testing.T) {
	sb := formOne(t, 0, func(b *guest.Builder) {
		b.NewBlock()
		b.Addi(1, 1, 1)
		b.Jmp(1)
		b.NewBlock()
		b.Halt()
	})
	reg, err := Translate(sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range reg.Ops {
		if o.Kind == ir.Guard {
			t.Error("jmp should not produce a guard")
		}
	}
	if len(reg.Ops) != 1 {
		t.Errorf("got %d ops, want 1", len(reg.Ops))
	}
}
