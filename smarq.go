// Package smarq is a reproduction of "SMARQ: Software-Managed Alias
// Register Queue for Dynamic Optimizations" (Wang, Wu, Rong, Park —
// Intel Labs, MICRO 2012) as a self-contained Go library.
//
// The library contains the complete system the paper evaluates:
//
//   - a guest ISA with an interpreter and execution profiler;
//   - superblock region formation over hot paths;
//   - an optimizer IR with binary-level alias analysis, speculative
//     memory reordering, and speculative load/store elimination;
//   - the SMARQ constraint analysis (check- and anti-constraints,
//     extended dependences) and the alias register allocation algorithm
//     of the paper's Figure 13, integrated with a list scheduler;
//   - an in-order VLIW timing model with atomic regions and four alias
//     detection hardware models (the order-based queue SMARQ manages, an
//     Itanium-like ALAT, an Efficeon-like bit-mask, and none);
//   - the runtime loop of the paper's Figure 1: execute, catch alias
//     exceptions, blacklist, re-optimize conservatively;
//   - a synthetic SPECFP2000-like benchmark suite and a harness that
//     regenerates every table and figure of the paper's evaluation.
//
// This package is the public facade: it re-exports the types needed to
// assemble guest programs, run them under the dynamic optimization
// system, and regenerate the experiments. The implementation lives in the
// internal packages (see DESIGN.md for the map).
//
// # Quick start
//
//	b := smarq.NewBuilder()
//	loop := b.NewBlock()
//	// ... emit guest instructions ...
//	prog := b.MustProgram()
//
//	sys := smarq.NewSystem(prog, &smarq.State{}, smarq.NewMemory(1<<20),
//		smarq.ConfigSMARQ(64))
//	halted, err := sys.Run(10_000_000)
//
// See examples/ for complete programs and cmd/smarq-bench for the
// experiment harness.
package smarq

import (
	"smarq/internal/dynopt"
	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/harness"
	"smarq/internal/health"
	"smarq/internal/workload"
)

// Guest program construction.

// Program is a guest program: basic blocks of guest instructions.
type Program = guest.Program

// Builder assembles guest programs.
type Builder = guest.Builder

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return guest.NewBuilder() }

// State is the guest architectural register state.
type State = guest.State

// Memory is the byte-addressable guest memory.
type Memory = guest.Memory

// NewMemory allocates a zeroed guest memory.
func NewMemory(size int) *Memory { return guest.NewMemory(size) }

// Assemble parses guest assembly text (see internal/guest.Assemble for the
// syntax) into a program.
func Assemble(src string) (*Program, error) { return guest.Assemble(src) }

// EncodeProgram serializes a program to its binary image.
func EncodeProgram(p *Program) []byte { return guest.EncodeProgram(p) }

// DecodeProgram parses a binary image back into a validated program.
func DecodeProgram(data []byte) (*Program, error) { return guest.DecodeProgram(data) }

// The dynamic optimization system.

// Config selects the alias hardware and tuning parameters.
type Config = dynopt.Config

// System runs one guest program under the dynamic optimization system.
type System = dynopt.System

// Stats is the run-wide accounting (cycles, events, per-region data).
type Stats = dynopt.Stats

// NewSystem creates a system over prog with the given state and memory.
func NewSystem(prog *Program, st *State, mem *Memory, cfg Config) *System {
	return dynopt.New(prog, st, mem, cfg)
}

// ConfigSMARQ is the paper's primary configuration with n ordered alias
// registers (64 reproduces SMARQ, 16 the Efficeon-like SMARQ16).
func ConfigSMARQ(n int) Config { return dynopt.ConfigSMARQ(n) }

// ConfigALAT is the Itanium-like comparison model.
func ConfigALAT() Config { return dynopt.ConfigALAT() }

// ConfigEfficeon is the true Transmeta-Efficeon-like bit-mask model:
// precise named-register detection capped at 15 registers by the
// instruction encoding.
func ConfigEfficeon() Config { return dynopt.ConfigEfficeon() }

// ConfigNoHW disables alias-detection hardware (the speedup baseline).
func ConfigNoHW() Config { return dynopt.ConfigNoHW() }

// ConfigNoStoreReorder is SMARQ-64 without speculative store reordering
// (the paper's Figure 16).
func ConfigNoStoreReorder() Config { return dynopt.ConfigNoStoreReorder() }

// Tiered recovery and fault injection.

// Tier is one rung of the per-region speculation ladder (full speculation
// down to interpreter-pinned).
type Tier = dynopt.Tier

// RecoveryConfig tunes the tiered deoptimization controller and the code
// cache bound (Config.Recovery).
type RecoveryConfig = dynopt.RecoveryConfig

// DefaultRecoveryConfig returns the standard ladder tuning.
func DefaultRecoveryConfig() RecoveryConfig { return dynopt.DefaultRecoveryConfig() }

// RecoveryStats is the recovery controller's run-wide accounting
// (Stats.Recovery).
type RecoveryStats = dynopt.RecoveryStats

// ChaosConfig selects deterministic fault-injection rates (Config.Chaos).
// The zero value disables injection.
type ChaosConfig = faultinject.Config

// DefaultChaos returns the standard chaos mix for the given seed.
func DefaultChaos(seed int64) ChaosConfig { return faultinject.Default(seed) }

// DefaultHostChaos returns the standard chaos mix extended with the host
// fault classes: compile-worker panics, compile hangs killed by the
// watchdog, poisoned compile results, and memo pressure.
func DefaultHostChaos(seed int64) ChaosConfig { return faultinject.DefaultHost(seed) }

// HealthConfig tunes the system-scope graceful-degradation controller
// (Config.Health). The zero value disables it.
type HealthConfig = health.Config

// DefaultHealthConfig returns the standard health-controller tuning.
func DefaultHealthConfig() HealthConfig { return health.DefaultConfig() }

// HealthLevel is one rung of the global degradation ladder (normal down
// to quarantine-new-regions).
type HealthLevel = health.Level

// HealthStats is the health controller's run-wide accounting
// (Stats.Health).
type HealthStats = health.Stats

// Benchmarks and experiments.

// Benchmark is one synthetic SPECFP2000-like workload.
type Benchmark = workload.Benchmark

// Suite returns the full benchmark suite.
func Suite() []Benchmark { return workload.Suite() }

// BenchmarkByName looks up one benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// Runner executes benchmark×configuration cells and derives the paper's
// tables and figures (Figure14 .. Figure19, ScalingSweep).
type Runner = harness.Runner

// NewRunner returns a Runner over the given suite (nil = full suite).
func NewRunner(suite []Benchmark) *Runner { return harness.NewRunner(suite) }
