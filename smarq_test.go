package smarq_test

import (
	"testing"

	"smarq"
)

// TestPublicAPIQuickstart exercises the facade exactly as the package doc
// advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	b := smarq.NewBuilder()
	b.NewBlock()
	b.Li(1, 1024)
	b.Li(2, 0)
	b.Li(3, 500)
	loop := b.NewBlock()
	b.St8(1, 0, 2)
	b.Ld8(4, 1, 0)
	b.Add(2, 2, 4)
	b.Addi(1, 1, 8)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, loop)
	b.NewBlock()
	b.Halt()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}

	sys := smarq.NewSystem(prog, &smarq.State{}, smarq.NewMemory(1<<16), smarq.ConfigSMARQ(64))
	halted, err := sys.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("program did not halt")
	}
	if sys.Stats.TotalCycles == 0 {
		t.Error("no cycles accounted")
	}
}

func TestPublicAPISuite(t *testing.T) {
	if len(smarq.Suite()) != 14 {
		t.Errorf("suite has %d benchmarks, want 14", len(smarq.Suite()))
	}
	bm, ok := smarq.BenchmarkByName("ammp")
	if !ok {
		t.Fatal("ammp missing")
	}
	if bm.Build() == nil {
		t.Error("benchmark Build returned nil")
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	if smarq.ConfigSMARQ(16).NumAliasRegs != 16 {
		t.Error("ConfigSMARQ register count wrong")
	}
	if smarq.ConfigNoStoreReorder().StoreReorder {
		t.Error("ConfigNoStoreReorder still reorders stores")
	}
	// ALAT and NoHW must at least differ in mode.
	if smarq.ConfigALAT().Mode == smarq.ConfigNoHW().Mode {
		t.Error("ALAT and NoHW configs identical")
	}
}

func TestPublicAPIRunner(t *testing.T) {
	bm, _ := smarq.BenchmarkByName("mesa")
	r := smarq.NewRunner([]smarq.Benchmark{bm})
	st, err := r.Run("mesa", "smarq64")
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits == 0 {
		t.Error("no commits recorded")
	}
}
