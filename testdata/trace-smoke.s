; trace-smoke: a small two-phase workload for the telemetry CI gate.
; Phase 1 fills A[i] = 3*i + 1; phase 2 streams A into a running sum,
; storing partial sums to B and re-loading A[i] (load-elimination
; fodder). Both loops clear the hot threshold, so the trace records two
; region compiles followed by a steady run of commits — enough event
; variety to pin the Chrome trace encoding, small enough to commit the
; golden.
start:
        li   r1, 1024        ; A base
        li   r2, 8192        ; B base
        li   r3, 0           ; i
        li   r4, 120         ; n
fill:
        muli r5, r3, 3
        addi r5, r5, 1
        muli r6, r3, 8
        add  r7, r1, r6
        st8  [r7+0], r5
        addi r3, r3, 1
        blt  r3, r4, fill
mid:
        li   r3, 0
        li   r8, 0           ; sum
sum:
        muli r6, r3, 8
        add  r7, r1, r6
        ld8  r9, [r7+0]
        add  r8, r8, r9
        add  r10, r2, r6
        st8  [r10+0], r8
        ld8  r11, [r7+0]
        add  r8, r8, r11
        addi r3, r3, 1
        blt  r3, r4, sum
done:
        halt
